// Cross-cutting equivalence and stress properties of the monitor stack.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/distributed.h"

namespace netqos::mon {
namespace {

TEST(Equivalence, DistributedMatchesCentralizedShape) {
  // Same workload measured by the centralized monitor (on L) and a
  // 3-station distributed one: window means agree within noise.
  exp::LirtssTestbed bed;
  DistributedMonitor dist(bed.simulator(), bed.topology(),
                          {&bed.host("S3"), &bed.host("S4"),
                           &bed.host("S5")});
  dist.add_path("S1", "N1");
  bed.watch("S1", "N1");
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(250)));
  dist.start();
  bed.run_until(seconds(40));

  const double central =
      bed.monitor().used_series("S1", "N1").mean_between(seconds(12),
                                                         seconds(38));
  const double distributed =
      dist.used_series("S1", "N1").mean_between(seconds(12), seconds(38));
  EXPECT_NEAR(central, distributed, central * 0.03);
}

/// Poll-interval sweep: the measured window mean must be interval-
/// independent (the whole point of counter differencing).
class PollIntervalSweep : public ::testing::TestWithParam<int> {};

TEST_P(PollIntervalSweep, WindowMeanIndependentOfInterval) {
  exp::TestbedOptions options;
  options.poll_interval = GetParam() * kMillisecond;
  exp::LirtssTestbed bed(options);
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(4), seconds(44),
                                        kilobytes_per_second(300)));
  bed.watch("S1", "N1");
  bed.run_until(seconds(44));

  const SimTime settle = seconds(4) + 2 * options.poll_interval;
  const double level = bed.monitor().used_series("S1", "N1")
                           .mean_between(settle, seconds(42));
  EXPECT_NEAR(level, 300'000.0 * 1.031 + 11'000.0, 9'000.0)
      << "poll interval " << GetParam() << " ms";
}

INSTANTIATE_TEST_SUITE_P(Intervals, PollIntervalSweep,
                         ::testing::Values(1000, 2000, 4000, 8000));

TEST(ClientStress, ManyConcurrentRequests) {
  exp::LirtssTestbed bed;
  bed.run_until(seconds(1));  // agents ready
  snmp::SnmpClient client(bed.simulator(), bed.host("L").udp());

  int completed = 0;
  for (int i = 0; i < 200; ++i) {
    const char* targets[] = {"10.0.0.11", "10.0.0.12", "10.0.0.21",
                             "10.0.0.22", "10.0.0.100"};
    client.get(sim::Ipv4Address::parse(targets[i % 5]), "public",
               {snmp::mib2::kSysUpTime.child(0)},
               [&](snmp::SnmpResult result) {
                 completed += result.ok();
               });
  }
  EXPECT_EQ(client.outstanding(), 200u);
  bed.run_until(seconds(20));
  EXPECT_EQ(completed, 200);
  EXPECT_EQ(client.outstanding(), 0u);
  EXPECT_EQ(client.stats().timeouts, 0u);
}

TEST(ClientStress, InterleavedRequestIdsNeverCrossTalk) {
  // Two clients on the same host must not consume each other's replies.
  exp::LirtssTestbed bed;
  bed.run_until(seconds(1));
  snmp::SnmpClient one(bed.simulator(), bed.host("L").udp());
  snmp::SnmpClient two(bed.simulator(), bed.host("L").udp());

  int ok_one = 0, ok_two = 0;
  for (int i = 0; i < 50; ++i) {
    one.get(sim::Ipv4Address::parse("10.0.0.11"), "public",
            {snmp::mib2::kSysName.child(0)}, [&](snmp::SnmpResult r) {
              ok_one += r.ok() &&
                        std::get<std::string>(r.varbinds[0].value) == "S1";
            });
    two.get(sim::Ipv4Address::parse("10.0.0.12"), "public",
            {snmp::mib2::kSysName.child(0)}, [&](snmp::SnmpResult r) {
              ok_two += r.ok() &&
                        std::get<std::string>(r.varbinds[0].value) == "S2";
            });
  }
  bed.run_until(seconds(10));
  EXPECT_EQ(ok_one, 50);
  EXPECT_EQ(ok_two, 50);
}

TEST(Equivalence, HcAndClassicSeriesAgreeUnderLoad) {
  exp::LirtssTestbed bed;
  MonitorConfig hc;
  hc.use_hc_counters = true;
  NetworkMonitor hc_monitor(bed.simulator(), bed.topology(), bed.host("S6"),
                            hc);
  hc_monitor.add_path("S1", "S2");
  hc_monitor.start();
  bed.watch("S1", "S2");
  bed.add_load("L", "S2",
               load::RateProfile::pulse(seconds(4), seconds(30),
                                        kilobytes_per_second(2000)));
  bed.run_until(seconds(30));

  const double classic = bed.monitor()
                             .used_series("S1", "S2")
                             .mean_between(seconds(10), seconds(28));
  const double hc_level = hc_monitor.used_series("S1", "S2")
                              .mean_between(seconds(10), seconds(28));
  EXPECT_NEAR(classic, hc_level, classic * 0.02);
}

}  // namespace
}  // namespace netqos::mon
