#include "monitor/plan.h"

#include <gtest/gtest.h>

#include "spec/testbed.h"

namespace netqos::mon {
namespace {

class LirtssPlan : public ::testing::Test {
 protected:
  LirtssPlan()
      : specfile(spec::lirtss_testbed()),
        plan(PollPlan::build(specfile.topology)) {}

  std::size_t connection_index(const std::string& node,
                               const std::string& itf) const {
    const auto& conns = specfile.topology.connections();
    for (std::size_t i = 0; i < conns.size(); ++i) {
      const topo::Endpoint ep{node, itf};
      if (conns[i].a == ep || conns[i].b == ep) return i;
    }
    throw std::out_of_range("no such endpoint");
  }

  spec::SpecFile specfile;
  PollPlan plan;
};

TEST_F(LirtssPlan, HostAgentsPreferred) {
  // S1 <-> switch is measured at S1's own agent.
  const auto& point = plan.measurement_for(connection_index("S1", "hme0"));
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(point->node, "S1");
  EXPECT_EQ(point->interface, "hme0");
  EXPECT_FALSE(point->via_switch);
}

TEST_F(LirtssPlan, AgentlessHostsFallBackToSwitchPort) {
  // Paper §4.1: S4/S5 have no daemon; poll the switch ports facing them.
  const auto& s4 = plan.measurement_for(connection_index("S4", "hme0"));
  ASSERT_TRUE(s4.has_value());
  EXPECT_EQ(s4->node, "sw0");
  EXPECT_EQ(s4->interface, "p5");
  EXPECT_TRUE(s4->via_switch);
}

TEST_F(LirtssPlan, HubUplinkMeasuredAtSwitch) {
  const auto& uplink = plan.measurement_for(connection_index("hub0", "h1"));
  ASSERT_TRUE(uplink.has_value());
  EXPECT_EQ(uplink->node, "sw0");
  EXPECT_EQ(uplink->interface, "p8");
}

TEST_F(LirtssPlan, HubHostsMeasuredAtTheirAgents) {
  const auto& n1 = plan.measurement_for(connection_index("N1", "e0"));
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(n1->node, "N1");
}

TEST_F(LirtssPlan, EverythingMonitorableInTestbed) {
  EXPECT_TRUE(plan.unmonitorable().empty());
}

TEST_F(LirtssPlan, AgentTasksCoverAllSixAgents) {
  EXPECT_EQ(plan.agents().size(), 6u);
  bool found_switch = false;
  for (const auto& task : plan.agents()) {
    if (task.node == "sw0") {
      found_switch = true;
      EXPECT_EQ(task.address, sim::Ipv4Address::parse("10.0.0.100"));
      // The switch is asked for the agentless ports + the hub uplink.
      EXPECT_GE(task.interfaces.size(), 5u);  // p4..p7 + p8
    }
    if (task.node == "S1") {
      EXPECT_EQ(task.address, sim::Ipv4Address::parse("10.0.0.11"));
    }
  }
  EXPECT_TRUE(found_switch);
}

TEST_F(LirtssPlan, InterfaceListsDeduplicated) {
  for (const auto& task : plan.agents()) {
    std::set<std::string> unique(task.interfaces.begin(),
                                 task.interfaces.end());
    EXPECT_EQ(unique.size(), task.interfaces.size())
        << "duplicates polled on " << task.node;
  }
}

TEST_F(LirtssPlan, DomainsComputed) {
  ASSERT_EQ(plan.domains().size(), 1u);
  int in_domain = 0;
  for (const auto& d : plan.domain_of()) in_domain += d.has_value();
  EXPECT_EQ(in_domain, 3);  // uplink + N1 + N2 connections
}

TEST(PollPlanErrors, InvalidTopologyRejected) {
  topo::NetworkTopology bad;
  topo::NodeSpec host;
  host.name = "A";
  host.kind = topo::NodeKind::kHost;
  host.interfaces.push_back({"e", mbps(10), "10.0.0.1"});
  bad.add_node(host);
  bad.add_connection({{"A", "e"}, {"ghost", "x"}});
  EXPECT_THROW(PollPlan::build(bad), std::invalid_argument);
}

TEST(PollPlanErrors, NoAgentsAnywhereMeansUnmonitorable) {
  topo::NetworkTopology topo;
  topo::NodeSpec a, b;
  a.name = "A";
  a.kind = topo::NodeKind::kHost;
  a.interfaces.push_back({"e", mbps(10), "10.0.0.1"});
  b.name = "B";
  b.kind = topo::NodeKind::kHost;
  b.interfaces.push_back({"e", mbps(10), "10.0.0.2"});
  topo.add_node(a);
  topo.add_node(b);
  topo.add_connection({{"A", "e"}, {"B", "e"}});

  const PollPlan plan = PollPlan::build(topo);
  EXPECT_TRUE(plan.agents().empty());
  ASSERT_EQ(plan.unmonitorable().size(), 1u);
  EXPECT_FALSE(plan.measurement_for(0).has_value());
}

TEST(PollPlanErrors, SnmpHostWithoutIpIsSkipped) {
  topo::NetworkTopology topo;
  topo::NodeSpec a;
  a.name = "A";
  a.kind = topo::NodeKind::kHost;
  a.snmp_enabled = true;
  a.interfaces.push_back({"e", mbps(10), ""});  // no IP: agent unreachable
  topo.add_node(a);
  // An interface without an IP fails validation only if speed missing;
  // here validation passes but the agent has no address.
  const PollPlan plan = PollPlan::build(topo);
  EXPECT_TRUE(plan.agents().empty());
}

}  // namespace
}  // namespace netqos::mon
