// Per-agent poll scheduling: the health state machine, exponential
// backoff, §4.1 quarantine fallback, per-interface staleness, and
// trap-driven re-probes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "experiments/lirtss.h"
#include "monitor/failure.h"
#include "monitor/plan.h"
#include "monitor/scheduler.h"
#include "monitor/stats_db.h"
#include "netsim/link.h"
#include "snmp/deploy.h"
#include "spec/testbed.h"

namespace netqos::mon {
namespace {

SchedulerConfig base_config() {
  SchedulerConfig config;
  config.poll_interval = 2 * kSecond;
  return config;
}

TEST(PollScheduler, HealthyAgentsAlwaysDue) {
  PollScheduler sched(base_config(), {"a", "b", "c"});
  EXPECT_EQ(sched.due(0).size(), 3u);
  EXPECT_EQ(sched.due(seconds(100)).size(), 3u);
  for (const auto& agent : sched.agents()) {
    EXPECT_EQ(agent.health, AgentHealth::kHealthy);
    EXPECT_EQ(agent.phase, 0);
  }
}

TEST(PollScheduler, LaunchHoldsAgentOutUntilResolution) {
  PollScheduler sched(base_config(), {"a", "b"});
  sched.record_launch("a", seconds(10));
  // In-flight polls are never doubled up within the interval.
  EXPECT_EQ(sched.due(seconds(10)).size(), 1u);
  EXPECT_EQ(sched.due(seconds(10))[0]->node, "b");
  // Success makes the agent immediately due again.
  sched.record_result("a", true, seconds(11));
  EXPECT_EQ(sched.due(seconds(11)).size(), 2u);
  EXPECT_EQ(sched.find("a")->polls, 1u);
}

TEST(PollScheduler, BackoffGrowsExponentiallyToCap) {
  auto config = base_config();  // base 2, cap 0 = 8 * interval
  PollScheduler sched(config, {"a"});
  std::vector<SimDuration> intervals;
  SimTime now = 0;
  for (int k = 0; k < 6; ++k) {
    sched.record_result("a", false, now);
    intervals.push_back(sched.backoff_interval(*sched.find("a")));
    now = sched.find("a")->next_due;
  }
  // 2s * 2^k, capped at 16s.
  EXPECT_EQ(intervals[0], 4 * kSecond);
  EXPECT_EQ(intervals[1], 8 * kSecond);
  EXPECT_EQ(intervals[2], 16 * kSecond);
  EXPECT_EQ(intervals[3], 16 * kSecond);
  EXPECT_EQ(intervals[5], 16 * kSecond);
  EXPECT_EQ(sched.effective_cap(), 16 * kSecond);
  // The backed-off agent is not due until the interval elapses.
  EXPECT_TRUE(sched.due(now - 1).empty());
  EXPECT_EQ(sched.due(now).size(), 1u);
}

TEST(PollScheduler, ExplicitCapOverridesDefault) {
  auto config = base_config();
  config.backoff_cap = 6 * kSecond;
  PollScheduler sched(config, {"a"});
  for (int k = 0; k < 4; ++k) sched.record_result("a", false, seconds(k));
  EXPECT_EQ(sched.backoff_interval(*sched.find("a")), 6 * kSecond);
}

TEST(PollScheduler, QuarantineAfterConsecutiveFailuresThenHealsOnSuccess) {
  PollScheduler sched(base_config(), {"a"});
  std::vector<std::tuple<std::string, AgentHealth, AgentHealth>> transitions;
  sched.set_transition_callback(
      [&](const std::string& node, AgentHealth from, AgentHealth to) {
        transitions.emplace_back(node, from, to);
      });

  sched.record_result("a", false, seconds(1));
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kDegraded);
  sched.record_result("a", false, seconds(3));
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kDegraded);
  sched.record_result("a", false, seconds(7));
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kQuarantined);
  EXPECT_EQ(sched.find("a")->quarantined_at, seconds(7));
  EXPECT_EQ(sched.find("a")->quarantines, 1u);
  EXPECT_EQ(sched.find("a")->failures, 3u);

  // One success heals completely (and resets the backoff).
  sched.record_result("a", true, seconds(30));
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kHealthy);
  EXPECT_EQ(sched.find("a")->consecutive_failures, 0);
  EXPECT_EQ(sched.due(seconds(30)).size(), 1u);

  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], std::make_tuple(std::string("a"),
                                            AgentHealth::kHealthy,
                                            AgentHealth::kDegraded));
  EXPECT_EQ(transitions[1], std::make_tuple(std::string("a"),
                                            AgentHealth::kDegraded,
                                            AgentHealth::kQuarantined));
  EXPECT_EQ(transitions[2], std::make_tuple(std::string("a"),
                                            AgentHealth::kQuarantined,
                                            AgentHealth::kHealthy));
}

TEST(PollScheduler, FixedIntervalModeNeverBacksOff) {
  auto config = base_config();
  config.backoff_base = 1.0;  // the seed's lock-step behaviour
  PollScheduler sched(config, {"a"});
  for (int k = 0; k < 5; ++k) {
    sched.record_result("a", false, seconds(2 * k + 1));
    // Still due at the very next round, no matter how many failures.
    EXPECT_EQ(sched.due(seconds(2 * k + 2)).size(), 1u);
    EXPECT_EQ(sched.backoff_interval(*sched.find("a")), 2 * kSecond);
  }
  // Health still degrades: backoff and quarantine are independent.
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kQuarantined);
}

TEST(PollScheduler, ReprobeMakesAgentDueButKeepsHealth) {
  PollScheduler sched(base_config(), {"a"});
  for (int k = 0; k < 3; ++k) sched.record_result("a", false, seconds(k));
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kQuarantined);
  EXPECT_TRUE(sched.due(seconds(10)).empty());

  sched.request_reprobe("a", seconds(10));
  EXPECT_EQ(sched.due(seconds(10)).size(), 1u);
  // Only a successful poll heals — the trap alone proves nothing.
  EXPECT_EQ(sched.find("a")->health, AgentHealth::kQuarantined);
}

TEST(PollScheduler, StaggerSpacesLaunchPhases) {
  auto config = base_config();
  config.stagger = 250 * kMillisecond;
  PollScheduler sched(config, {"a", "b", "c"});
  EXPECT_EQ(sched.find("a")->phase, 0);
  EXPECT_EQ(sched.find("b")->phase, 250 * kMillisecond);
  EXPECT_EQ(sched.find("c")->phase, 500 * kMillisecond);
}

TEST(PollScheduler, JitterIsDeterministicPerSeedAndZeroWhenDisabled) {
  auto config = base_config();
  EXPECT_EQ(PollScheduler(config, {"a"}).draw_jitter(), 0);

  config.launch_jitter = 100 * kMillisecond;
  PollScheduler first(config, {"a"});
  PollScheduler second(config, {"a"});
  bool any_nonzero = false;
  for (int i = 0; i < 32; ++i) {
    const SimDuration draw = first.draw_jitter();
    EXPECT_EQ(draw, second.draw_jitter());
    EXPECT_GE(draw, 0);
    EXPECT_LT(draw, 100 * kMillisecond);
    if (draw > 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

// --- §4.1 quarantine fallback in the poll plan ---------------------------

std::size_t find_connection(const topo::NetworkTopology& topo,
                            const std::string& a, const std::string& b) {
  const auto& conns = topo.connections();
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if ((conns[i].a.node == a && conns[i].b.node == b) ||
        (conns[i].a.node == b && conns[i].b.node == a)) {
      return i;
    }
  }
  ADD_FAILURE() << "no connection " << a << " <-> " << b;
  return 0;
}

TEST(PollPlanQuarantine, SwitchAttachedHostFallsBackToSwitchPort) {
  const auto specfile = spec::lirtss_testbed();
  PollPlan plan = PollPlan::build(specfile.topology);
  const std::size_t conn = find_connection(specfile.topology, "S2", "sw0");

  ASSERT_TRUE(plan.measurement_for(conn).has_value());
  EXPECT_EQ(plan.measurement_for(conn)->node, "S2");
  EXPECT_FALSE(plan.measurement_for(conn)->via_switch);
  ASSERT_TRUE(plan.switch_fallback_for(conn).has_value());
  EXPECT_EQ(plan.switch_fallback_for(conn)->node, "sw0");

  const auto changed = plan.set_agent_quarantined("S2", true);
  EXPECT_NE(std::find(changed.begin(), changed.end(), conn), changed.end());
  EXPECT_TRUE(plan.agent_quarantined("S2"));
  EXPECT_EQ(plan.measurement_for(conn)->node, "sw0");
  EXPECT_TRUE(plan.measurement_for(conn)->via_switch);
  // The build-time choice is preserved for when the agent heals.
  EXPECT_EQ(plan.primary_measurement_for(conn)->node, "S2");

  const auto restored = plan.set_agent_quarantined("S2", false);
  EXPECT_NE(std::find(restored.begin(), restored.end(), conn),
            restored.end());
  EXPECT_EQ(plan.measurement_for(conn)->node, "S2");
  EXPECT_FALSE(plan.measurement_for(conn)->via_switch);
}

TEST(PollPlanQuarantine, HubAttachedHostHasNoSwitchFallback) {
  const auto specfile = spec::lirtss_testbed();
  PollPlan plan = PollPlan::build(specfile.topology);
  const std::size_t conn = find_connection(specfile.topology, "N1", "hub0");

  ASSERT_TRUE(plan.measurement_for(conn).has_value());
  EXPECT_EQ(plan.measurement_for(conn)->node, "N1");
  EXPECT_FALSE(plan.switch_fallback_for(conn).has_value());

  // Quarantining N1 cannot redirect anywhere: the effective point stays
  // the (stale but honest) host agent, and nothing reports as changed.
  const auto changed = plan.set_agent_quarantined("N1", true);
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(plan.measurement_for(conn)->node, "N1");
  EXPECT_FALSE(plan.measurement_for(conn)->via_switch);
}

TEST(PollPlanQuarantine, QuarantinedFallbackAgentKeepsPrimary) {
  const auto specfile = spec::lirtss_testbed();
  PollPlan plan = PollPlan::build(specfile.topology);
  const std::size_t conn = find_connection(specfile.topology, "S2", "sw0");

  // With the switch itself quarantined too, there is no healthy fallback:
  // stay on the primary rather than redirect to another dark agent.
  plan.set_agent_quarantined("sw0", true);
  const auto changed = plan.set_agent_quarantined("S2", true);
  EXPECT_TRUE(changed.empty());
  EXPECT_EQ(plan.measurement_for(conn)->node, "S2");

  // Switch heals while S2 is still dark: now the fallback engages.
  const auto engaged = plan.set_agent_quarantined("sw0", false);
  EXPECT_NE(std::find(engaged.begin(), engaged.end(), conn), engaged.end());
  EXPECT_EQ(plan.measurement_for(conn)->node, "sw0");
}

// --- per-interface staleness in the StatsDb ------------------------------

TEST(StatsDbAge, PerInterfaceAgeIsNotDbGlobal) {
  StatsDb db;
  const InterfaceKey slow{"S2", "hme0"};
  const InterfaceKey fast{"S1", "hme0"};
  CounterSample sample;
  sample.sys_uptime_ticks = 100;
  db.update(slow, seconds(1), sample);
  sample.sys_uptime_ticks = 900;
  db.update(fast, seconds(9), sample);

  // The db-global clock says "1 second old" — but that is only the most
  // recently polled interface. The per-interface query tells the truth.
  EXPECT_EQ(db.last_update(), seconds(9));
  ASSERT_TRUE(db.last_update(slow).has_value());
  EXPECT_EQ(*db.last_update(slow), seconds(1));
  EXPECT_EQ(*db.last_update(fast), seconds(9));
  EXPECT_EQ(*db.sample_age(slow, seconds(10)), 9 * kSecond);
  EXPECT_EQ(*db.sample_age(fast, seconds(10)), 1 * kSecond);

  // Unknown interfaces have no age at all.
  EXPECT_FALSE(db.last_update({"S3", "hme0"}).has_value());
  EXPECT_FALSE(db.sample_age({"S3", "hme0"}, seconds(10)).has_value());
}

// --- end-to-end: dark agent, fallback, staleness, recovery ---------------

snmp::SnmpAgent& agent_of(exp::LirtssTestbed& bed, const std::string& node) {
  snmp::DeployedAgent* deployed = snmp::find_agent(bed.agents(), node);
  EXPECT_NE(deployed, nullptr);
  return *deployed->agent;
}

TEST(SchedulerIntegration, DarkAgentQuarantinedFallsBackAndRecovers) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "S2");
  bed.run_until(seconds(11));
  EXPECT_EQ(bed.monitor().scheduler().find("S2")->health,
            AgentHealth::kHealthy);
  EXPECT_EQ(bed.monitor().current_usage("S1", "S2").freshness,
            Freshness::kFresh);

  // The SNMP daemon on S2 dies (host keeps forwarding traffic).
  agent_of(bed, "S2").set_responding(false);

  // Before quarantine flips the measure point, the path's S2 samples age
  // past the bound: reported stale, never silently fresh.
  bed.run_until(from_seconds(16.5));
  const PathUsage aging = bed.monitor().current_usage("S1", "S2");
  EXPECT_EQ(aging.freshness, Freshness::kStale);
  EXPECT_GT(aging.max_sample_age, bed.monitor().effective_stale_after());

  // Three consecutive failures quarantine S2 and redirect its connection
  // to the switch port (§4.1); via the fallback the path is fresh again.
  bed.run_until(seconds(60));
  EXPECT_EQ(bed.monitor().scheduler().find("S2")->health,
            AgentHealth::kQuarantined);
  EXPECT_TRUE(bed.monitor().plan().agent_quarantined("S2"));
  EXPECT_GT(bed.monitor().stats().quarantine_transitions, 0u);
  EXPECT_GT(bed.monitor().stats().polls_skipped, 0u);
  const PathUsage fallen_back = bed.monitor().current_usage("S1", "S2");
  EXPECT_EQ(fallen_back.freshness, Freshness::kFresh);
  bool via_switch = false;
  for (const auto& usage : fallen_back.connections) {
    via_switch = via_switch || usage.via_switch;
  }
  EXPECT_TRUE(via_switch);

  // Backoff keeps probing at the cap; the daemon comes back and the next
  // probe heals the agent and restores the host-side measure point.
  agent_of(bed, "S2").set_responding(true);
  bed.run_until(seconds(120));
  EXPECT_EQ(bed.monitor().scheduler().find("S2")->health,
            AgentHealth::kHealthy);
  EXPECT_FALSE(bed.monitor().plan().agent_quarantined("S2"));
  const PathUsage healed = bed.monitor().current_usage("S1", "S2");
  EXPECT_EQ(healed.freshness, Freshness::kFresh);
  for (const auto& usage : healed.connections) {
    EXPECT_FALSE(usage.via_switch);
  }
}

TEST(SchedulerIntegration, LinkUpTrapTriggersImmediateReprobe) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "S2");
  FailureDetector detector(bed.simulator(), bed.topology(), bed.host("L"));
  bed.monitor().set_failure_detector(&detector);
  bed.run_until(seconds(10));

  sim::Link* link = bed.host("S2").find_interface("hme0")->link();
  link->set_up(false);
  // Run until the last capped-backoff probe has failed, leaving the next
  // probe a full cap (16s) away.
  bed.run_until(seconds(46));
  ASSERT_EQ(bed.monitor().scheduler().find("S2")->health,
            AgentHealth::kQuarantined);
  const SimTime next_due = bed.monitor().scheduler().find("S2")->next_due;
  EXPECT_GT(next_due, seconds(55));

  // linkUp trap (from the switch port and from S2 itself) clears the
  // backoff: the agent is re-probed and healed long before next_due.
  link->set_up(true);
  bed.run_until(seconds(49));
  EXPECT_EQ(bed.monitor().scheduler().find("S2")->health,
            AgentHealth::kHealthy);
}

TEST(SchedulerIntegration, StaggeredLaunchesStillMeasure) {
  exp::LirtssTestbed bed;
  MonitorConfig config;
  config.poll_interval = 2 * kSecond;
  config.scheduler.stagger = 200 * kMillisecond;
  config.scheduler.launch_jitter = 50 * kMillisecond;
  NetworkMonitor monitor(bed.simulator(), bed.topology(), bed.host("L"),
                         config);
  monitor.add_path("S1", "S2");
  monitor.start();
  bed.simulator().run_until(seconds(30));
  monitor.stop();

  EXPECT_GT(monitor.stats().rounds_completed, 10u);
  EXPECT_EQ(monitor.stats().agent_poll_failures, 0u);
  for (const auto& agent : monitor.scheduler().agents()) {
    EXPECT_EQ(agent.health, AgentHealth::kHealthy);
  }
  const PathUsage usage = monitor.current_usage("S1", "S2");
  EXPECT_TRUE(usage.complete);
  EXPECT_EQ(usage.freshness, Freshness::kFresh);
}

}  // namespace
}  // namespace netqos::mon
