#include "rm/manager.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"

namespace netqos::rm {
namespace {

TEST(ResourceManager, RecommendsOnViolation) {
  exp::LirtssTestbed bed;
  mon::ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(1000));
  ResourceManager manager(bed.monitor(), detector);

  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(60),
                                        kilobytes_per_second(600)));
  bed.run_until(seconds(40));

  ASSERT_EQ(manager.recommendations().size(), 1u);
  const Recommendation& rec = manager.recommendations()[0];
  EXPECT_EQ(rec.path.first, "S1");
  EXPECT_EQ(rec.path.second, "N1");
  EXPECT_NE(rec.congested_connection.find("hub0"), std::string::npos);
  // The LIRTSS testbed is a tree: no alternate path exists.
  EXPECT_NE(rec.action.find("no alternate path"), std::string::npos);
  EXPECT_EQ(manager.active_violations(), 1u);
}

TEST(ResourceManager, ViolationClearsOnRecovery) {
  exp::LirtssTestbed bed;
  mon::ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(1000));
  ResourceManager manager(bed.monitor(), detector);

  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(30),
                                        kilobytes_per_second(600)));
  bed.run_until(seconds(60));
  EXPECT_EQ(manager.active_violations(), 0u);
  EXPECT_EQ(manager.recommendations().size(), 1u);  // one violation episode
}

TEST(ResourceManager, CallbackDelivered) {
  exp::LirtssTestbed bed;
  mon::ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(1200));
  ResourceManager manager(bed.monitor(), detector);
  int fired = 0;
  manager.set_recommendation_callback(
      [&](const Recommendation& rec) {
        ++fired;
        EXPECT_FALSE(rec.action.empty());
      });
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(30),
                                        kilobytes_per_second(500)));
  bed.run_until(seconds(30));
  EXPECT_EQ(fired, 1);
}

TEST(ResourceManager, QuietNetworkNoRecommendations) {
  exp::LirtssTestbed bed;
  mon::ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "S2", kilobytes_per_second(1000));
  ResourceManager manager(bed.monitor(), detector);
  bed.run_until(seconds(30));
  EXPECT_TRUE(manager.recommendations().empty());
}

}  // namespace
}  // namespace netqos::rm
