#include "topology/path.h"

#include <gtest/gtest.h>

namespace netqos::topo {
namespace {

/// Builds a line A - sw1 - sw2 - B plus a redundant direct sw1 - sw2 link
/// (a loop) to exercise the loop detection.
class PathFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto host = [](const std::string& name, const std::string& ip) {
      NodeSpec node;
      node.name = name;
      node.kind = NodeKind::kHost;
      node.interfaces.push_back({"eth0", mbps(100), ip});
      return node;
    };
    auto sw = [](const std::string& name, int ports) {
      NodeSpec node;
      node.name = name;
      node.kind = NodeKind::kSwitch;
      node.default_speed = mbps(100);
      for (int i = 1; i <= ports; ++i) {
        node.interfaces.push_back({"p" + std::to_string(i), 0, ""});
      }
      return node;
    };
    topo.add_node(host("A", "10.0.0.1"));
    topo.add_node(host("B", "10.0.0.2"));
    topo.add_node(sw("sw1", 4));
    topo.add_node(sw("sw2", 4));
    c_a_sw1 = topo.add_connection({{"A", "eth0"}, {"sw1", "p1"}});
    c_sw1_sw2 = topo.add_connection({{"sw1", "p2"}, {"sw2", "p1"}});
    c_sw2_b = topo.add_connection({{"sw2", "p2"}, {"B", "eth0"}});
    // Redundant parallel link forming a cycle sw1 - sw2.
    c_loop = topo.add_connection({{"sw1", "p3"}, {"sw2", "p3"}});
  }

  NetworkTopology topo;
  std::size_t c_a_sw1 = 0, c_sw1_sw2 = 0, c_sw2_b = 0, c_loop = 0;
};

TEST_F(PathFixture, RecursiveTraversalFindsPath) {
  const auto path = traverse_recursive(topo, "A", "B");
  ASSERT_TRUE(path.has_value());
  const Path expected{c_a_sw1, c_sw1_sw2, c_sw2_b};
  EXPECT_EQ(*path, expected);
}

TEST_F(PathFixture, TraversalTerminatesDespiteLoop) {
  // The cycle sw1-sw2 must not cause infinite recursion.
  const auto path = traverse_recursive(topo, "A", "B");
  EXPECT_TRUE(path.has_value());
}

TEST_F(PathFixture, ShortestPathMatchesRecursiveHere) {
  const auto a = traverse_recursive(topo, "A", "B");
  const auto b = shortest_path(topo, "A", "B");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->size(), b->size());
}

TEST_F(PathFixture, ReverseDirectionWorks) {
  const auto path = traverse_recursive(topo, "B", "A");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->front(), c_sw2_b);
  EXPECT_EQ(path->back(), c_a_sw1);
}

TEST_F(PathFixture, UnknownNodesReturnNullopt) {
  EXPECT_FALSE(traverse_recursive(topo, "A", "nope").has_value());
  EXPECT_FALSE(traverse_recursive(topo, "nope", "B").has_value());
  EXPECT_FALSE(shortest_path(topo, "X", "Y").has_value());
}

TEST_F(PathFixture, DisconnectedNodeUnreachable) {
  NodeSpec lonely;
  lonely.name = "island";
  lonely.kind = NodeKind::kHost;
  lonely.interfaces.push_back({"eth0", mbps(100), "10.0.0.9"});
  topo.add_node(lonely);
  EXPECT_FALSE(traverse_recursive(topo, "A", "island").has_value());
  EXPECT_FALSE(shortest_path(topo, "A", "island").has_value());
}

TEST_F(PathFixture, AllSimplePathsFindsBoth) {
  const auto paths = all_simple_paths(topo, "A", "B");
  // Via c_sw1_sw2 and via c_loop.
  EXPECT_EQ(paths.size(), 2u);
}

TEST_F(PathFixture, AllSimplePathsRespectsLimit) {
  const auto paths = all_simple_paths(topo, "A", "B", 1);
  EXPECT_EQ(paths.size(), 1u);
}

TEST_F(PathFixture, PathNodesWalksChain) {
  const auto path = traverse_recursive(topo, "A", "B");
  const auto nodes = path_nodes(topo, *path, "A");
  const std::vector<std::string> expected{"A", "sw1", "sw2", "B"};
  EXPECT_EQ(nodes, expected);
}

TEST_F(PathFixture, PathNodesRejectsBrokenChain) {
  const Path bogus{c_sw2_b, c_a_sw1};
  EXPECT_THROW(path_nodes(topo, bogus, "A"), std::invalid_argument);
}

TEST_F(PathFixture, PathNodesRejectsBadIndex) {
  const Path bogus{999};
  EXPECT_THROW(path_nodes(topo, bogus, "A"), std::invalid_argument);
}

TEST_F(PathFixture, PathToStringListsConnections) {
  const auto path = traverse_recursive(topo, "A", "B");
  const std::string text = path_to_string(topo, *path);
  EXPECT_NE(text.find("A.eth0"), std::string::npos);
  EXPECT_NE(text.find("B.eth0"), std::string::npos);
  EXPECT_NE(text.find(" | "), std::string::npos);
}

TEST(PathTrivia, SameNodeShortestPathIsEmpty) {
  NetworkTopology topo;
  NodeSpec node;
  node.name = "A";
  node.kind = NodeKind::kHost;
  node.interfaces.push_back({"eth0", mbps(100), "10.0.0.1"});
  topo.add_node(node);
  const auto path = shortest_path(topo, "A", "A");
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

TEST(PathTrivia, SameNodeRecursiveIsEmpty) {
  NetworkTopology topo;
  NodeSpec node;
  node.name = "A";
  node.kind = NodeKind::kHost;
  node.interfaces.push_back({"eth0", mbps(100), "10.0.0.1"});
  topo.add_node(node);
  const auto path = traverse_recursive(topo, "A", "A");
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

/// BFS guarantees minimality; DFS may take the long way. Build a triangle
/// where DFS's connection-order walk goes the long way round.
TEST(PathShortest, BfsBeatsDfsOnTriangle) {
  NetworkTopology topo;
  auto sw = [](const std::string& name) {
    NodeSpec node;
    node.name = name;
    node.kind = NodeKind::kSwitch;
    node.default_speed = mbps(100);
    for (int i = 1; i <= 4; ++i) {
      node.interfaces.push_back({"p" + std::to_string(i), 0, ""});
    }
    return node;
  };
  topo.add_node(sw("a"));
  topo.add_node(sw("b"));
  topo.add_node(sw("c"));
  // Connection order: a-b first so DFS from a goes a->b->c.
  topo.add_connection({{"a", "p1"}, {"b", "p1"}});
  topo.add_connection({{"b", "p2"}, {"c", "p1"}});
  topo.add_connection({{"a", "p2"}, {"c", "p2"}});  // direct edge

  const auto dfs = traverse_recursive(topo, "a", "c");
  const auto bfs = shortest_path(topo, "a", "c");
  ASSERT_TRUE(dfs.has_value());
  ASSERT_TRUE(bfs.has_value());
  EXPECT_EQ(dfs->size(), 2u);  // the paper's simple DFS takes the detour
  EXPECT_EQ(bfs->size(), 1u);  // BFS finds the direct link
}

}  // namespace
}  // namespace netqos::topo
