#include "topology/diff.h"

#include <gtest/gtest.h>

#include "spec/testbed.h"

namespace netqos::topo {
namespace {

bool has_kind(const std::vector<TopologyDifference>& diffs,
              TopologyDifference::Kind kind) {
  for (const auto& d : diffs) {
    if (d.kind == kind) return true;
  }
  return false;
}

TEST(TopologyDiff, IdenticalTopologiesAreClean) {
  const auto topo = spec::lirtss_testbed().topology;
  EXPECT_TRUE(diff_topologies(topo, topo).empty());
}

TEST(TopologyDiff, MissingNodeReported) {
  const auto expected = spec::lirtss_testbed().topology;
  NetworkTopology discovered;  // empty
  const auto diffs = diff_topologies(expected, discovered);
  EXPECT_TRUE(has_kind(diffs, TopologyDifference::Kind::kMissingNode));
  // Every expected node missing, every connection missing.
  EXPECT_EQ(diffs.size(),
            expected.nodes().size() + expected.connections().size());
}

TEST(TopologyDiff, UnexpectedNodeReported) {
  const auto expected = spec::lirtss_testbed().topology;
  auto discovered = expected;
  NodeSpec rogue;
  rogue.name = "rogue";
  rogue.kind = NodeKind::kHost;
  rogue.interfaces.push_back({"eth0", mbps(100), "10.9.9.9"});
  discovered.add_node(rogue);
  const auto diffs = diff_topologies(expected, discovered);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, TopologyDifference::Kind::kUnexpectedNode);
  EXPECT_NE(diffs[0].description.find("rogue"), std::string::npos);
}

TEST(TopologyDiff, PlaceholdersIgnoredByDefault) {
  const auto expected = spec::lirtss_testbed().topology;
  auto discovered = expected;
  NodeSpec ghost;
  ghost.name = "host-02deadbeef00";
  ghost.kind = NodeKind::kHost;
  ghost.interfaces.push_back({"if0", mbps(100), ""});
  discovered.add_node(ghost);
  EXPECT_TRUE(diff_topologies(expected, discovered).empty());
  EXPECT_FALSE(
      diff_topologies(expected, discovered, /*report_placeholders=*/true)
          .empty());
}

TEST(TopologyDiff, KindMismatchReported) {
  const auto expected = spec::lirtss_testbed().topology;
  NetworkTopology discovered;
  for (auto node : expected.nodes()) {
    if (node.name == "hub0") node.kind = NodeKind::kSwitch;
    discovered.add_node(node);
  }
  for (const auto& conn : expected.connections()) {
    discovered.add_connection(conn);
  }
  const auto diffs = diff_topologies(expected, discovered);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, TopologyDifference::Kind::kKindMismatch);
}

TEST(TopologyDiff, SpeedMismatchReported) {
  const auto expected = spec::lirtss_testbed().topology;
  NetworkTopology discovered;
  for (auto node : expected.nodes()) {
    if (node.name == "N1") node.interfaces[0].speed = mbps(100);
    discovered.add_node(node);
  }
  for (const auto& conn : expected.connections()) {
    discovered.add_connection(conn);
  }
  const auto diffs = diff_topologies(expected, discovered);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].kind, TopologyDifference::Kind::kSpeedMismatch);
}

TEST(TopologyDiff, ConnectionDirectionIrrelevant) {
  const auto expected = spec::lirtss_testbed().topology;
  NetworkTopology discovered;
  for (const auto& node : expected.nodes()) discovered.add_node(node);
  for (const auto& conn : expected.connections()) {
    discovered.add_connection({conn.b, conn.a});  // flipped endpoints
  }
  EXPECT_TRUE(diff_topologies(expected, discovered).empty());
}

TEST(TopologyDiff, MissingAndUnexpectedConnections) {
  const auto expected = spec::lirtss_testbed().topology;
  NetworkTopology discovered;
  for (const auto& node : expected.nodes()) discovered.add_node(node);
  // Drop the N2 connection; rewire N2 to a different hub port.
  for (const auto& conn : expected.connections()) {
    if (conn.touches("N2")) continue;
    discovered.add_connection(conn);
  }
  discovered.add_connection({{"N2", "e0"}, {"hub0", "h3"}});
  // Same ports as original? Original N2 was hub0.h3 — use h1? h1 is the
  // uplink (already used). Rewire to a *new* interface name instead:
  // discovery saw N2 on a port the spec calls something else.
  const auto diffs = diff_topologies(expected, discovered);
  // The rewired connection equals the original (N2.e0 <-> hub0.h3), so
  // expect a clean diff here; rebuild with a real mismatch:
  NetworkTopology rewired;
  for (auto node : expected.nodes()) {
    if (node.name == "hub0") {
      node.interfaces.push_back({"h4", 0, ""});
    }
    rewired.add_node(node);
  }
  for (const auto& conn : expected.connections()) {
    if (conn.touches("N2")) {
      rewired.add_connection({{"N2", "e0"}, {"hub0", "h4"}});
    } else {
      rewired.add_connection(conn);
    }
  }
  const auto diffs2 = diff_topologies(expected, rewired);
  EXPECT_TRUE(
      has_kind(diffs2, TopologyDifference::Kind::kMissingConnection));
  EXPECT_TRUE(
      has_kind(diffs2, TopologyDifference::Kind::kUnexpectedConnection));
  EXPECT_TRUE(
      has_kind(diffs2, TopologyDifference::Kind::kUnexpectedInterface));
  EXPECT_TRUE(diffs.empty());
}

TEST(TopologyDiff, KindNamesComplete) {
  using Kind = TopologyDifference::Kind;
  for (Kind kind :
       {Kind::kMissingNode, Kind::kUnexpectedNode, Kind::kKindMismatch,
        Kind::kMissingInterface, Kind::kUnexpectedInterface,
        Kind::kSpeedMismatch, Kind::kMissingConnection,
        Kind::kUnexpectedConnection}) {
    EXPECT_STRNE(difference_kind_name(kind), "?");
  }
}

}  // namespace
}  // namespace netqos::topo
