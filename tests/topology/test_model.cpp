#include "topology/model.h"

#include <gtest/gtest.h>

namespace netqos::topo {
namespace {

NodeSpec make_host(const std::string& name, const std::string& ip) {
  NodeSpec node;
  node.name = name;
  node.kind = NodeKind::kHost;
  node.interfaces.push_back({"eth0", mbps(100), ip});
  return node;
}

NodeSpec make_switch(const std::string& name, int ports) {
  NodeSpec node;
  node.name = name;
  node.kind = NodeKind::kSwitch;
  node.default_speed = mbps(100);
  for (int i = 1; i <= ports; ++i) {
    node.interfaces.push_back({"p" + std::to_string(i), 0, ""});
  }
  return node;
}

TEST(NodeSpec, FindInterface) {
  const NodeSpec node = make_switch("sw", 3);
  EXPECT_NE(node.find_interface("p2"), nullptr);
  EXPECT_EQ(node.find_interface("p9"), nullptr);
}

TEST(NodeSpec, InterfaceSpeedFallsBackToDefault) {
  NodeSpec node = make_switch("sw", 1);
  EXPECT_EQ(node.interface_speed(node.interfaces[0]), mbps(100));
  node.interfaces[0].speed = mbps(10);
  EXPECT_EQ(node.interface_speed(node.interfaces[0]), mbps(10));
}

TEST(Connection, EndAtAndPeerOf) {
  const Connection conn{{"A", "eth0"}, {"B", "eth1"}};
  EXPECT_EQ(conn.end_at("A").interface, "eth0");
  EXPECT_EQ(conn.peer_of("A").node, "B");
  EXPECT_EQ(conn.peer_of("B").node, "A");
  EXPECT_THROW(conn.end_at("C"), std::out_of_range);
  EXPECT_THROW(conn.peer_of("C"), std::out_of_range);
}

TEST(Connection, Touches) {
  const Connection conn{{"A", "e"}, {"B", "e"}};
  EXPECT_TRUE(conn.touches("A"));
  EXPECT_TRUE(conn.touches("B"));
  EXPECT_FALSE(conn.touches("C"));
}

TEST(NetworkTopology, DuplicateNodeThrows) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  EXPECT_THROW(topo.add_node(make_host("A", "10.0.0.2")),
               std::invalid_argument);
}

TEST(NetworkTopology, FindNodeAndIndex) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  topo.add_node(make_host("B", "10.0.0.2"));
  EXPECT_NE(topo.find_node("B"), nullptr);
  EXPECT_EQ(topo.find_node("C"), nullptr);
  EXPECT_EQ(topo.node_index("B"), 1u);
  EXPECT_FALSE(topo.node_index("Z").has_value());
}

TEST(NetworkTopology, ConnectionsOf) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  topo.add_node(make_host("B", "10.0.0.2"));
  topo.add_node(make_switch("sw", 2));
  topo.add_connection({{"A", "eth0"}, {"sw", "p1"}});
  topo.add_connection({{"B", "eth0"}, {"sw", "p2"}});
  EXPECT_EQ(topo.connections_of("sw").size(), 2u);
  EXPECT_EQ(topo.connections_of("A").size(), 1u);
  EXPECT_TRUE(topo.connections_of("nobody").empty());
}

TEST(NetworkTopologyValidate, CleanTopologyHasNoProblems) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  topo.add_node(make_switch("sw", 1));
  topo.add_connection({{"A", "eth0"}, {"sw", "p1"}});
  EXPECT_TRUE(topo.validate().empty());
}

TEST(NetworkTopologyValidate, UnknownNodeReported) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  topo.add_connection({{"A", "eth0"}, {"ghost", "p1"}});
  const auto problems = topo.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown node"), std::string::npos);
}

TEST(NetworkTopologyValidate, UnknownInterfaceReported) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  topo.add_node(make_switch("sw", 1));
  topo.add_connection({{"A", "eth9"}, {"sw", "p1"}});
  const auto problems = topo.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("unknown interface"), std::string::npos);
}

TEST(NetworkTopologyValidate, OneToOneRuleEnforced) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  topo.add_node(make_host("B", "10.0.0.2"));
  topo.add_node(make_switch("sw", 1));
  topo.add_connection({{"A", "eth0"}, {"sw", "p1"}});
  topo.add_connection({{"B", "eth0"}, {"sw", "p1"}});  // p1 reused
  bool found = false;
  for (const auto& p : topo.validate()) {
    if (p.find("1-to-1") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NetworkTopologyValidate, SelfConnectionReported) {
  NodeSpec node = make_switch("sw", 2);
  NetworkTopology topo;
  topo.add_node(node);
  topo.add_connection({{"sw", "p1"}, {"sw", "p2"}});
  bool found = false;
  for (const auto& p : topo.validate()) {
    if (p.find("self-connection") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NetworkTopologyValidate, MissingSpeedReported) {
  NetworkTopology topo;
  NodeSpec node;
  node.name = "A";
  node.kind = NodeKind::kHost;
  node.interfaces.push_back({"eth0", 0, "10.0.0.1"});  // no speed anywhere
  topo.add_node(node);
  topo.add_node(make_switch("sw", 1));
  topo.add_connection({{"A", "eth0"}, {"sw", "p1"}});
  bool found = false;
  for (const auto& p : topo.validate()) {
    if (p.find("speed") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(NetworkTopologyValidate, DuplicateInterfaceReported) {
  NetworkTopology topo;
  NodeSpec node = make_host("A", "10.0.0.1");
  node.interfaces.push_back({"eth0", mbps(100), "10.0.0.2"});
  topo.add_node(node);
  bool found = false;
  for (const auto& p : topo.validate()) {
    if (p.find("duplicate interface") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ConnectionSpeed, IsMinimumOfEndpoints) {
  NetworkTopology topo;
  NodeSpec host = make_host("A", "10.0.0.1");
  host.interfaces[0].speed = mbps(10);
  topo.add_node(host);
  topo.add_node(make_switch("sw", 1));
  const Connection conn{{"A", "eth0"}, {"sw", "p1"}};
  EXPECT_EQ(connection_speed(topo, conn), mbps(10));
}

TEST(ConnectionSpeed, UnknownEndpointThrows) {
  NetworkTopology topo;
  topo.add_node(make_host("A", "10.0.0.1"));
  EXPECT_THROW(
      connection_speed(topo, Connection{{"A", "eth0"}, {"X", "p"}}),
      std::out_of_range);
}

TEST(NodeKindNames, AllNamed) {
  EXPECT_STREQ(node_kind_name(NodeKind::kHost), "host");
  EXPECT_STREQ(node_kind_name(NodeKind::kSwitch), "switch");
  EXPECT_STREQ(node_kind_name(NodeKind::kHub), "hub");
}

}  // namespace
}  // namespace netqos::topo
