#include "topology/domains.h"

#include <gtest/gtest.h>

#include "spec/testbed.h"

namespace netqos::topo {
namespace {

NodeSpec host(const std::string& name, const std::string& ip,
              BitsPerSecond speed = mbps(100)) {
  NodeSpec node;
  node.name = name;
  node.kind = NodeKind::kHost;
  node.interfaces.push_back({"eth0", speed, ip});
  return node;
}

NodeSpec hub(const std::string& name, int ports,
             BitsPerSecond speed = mbps(10)) {
  NodeSpec node;
  node.name = name;
  node.kind = NodeKind::kHub;
  node.default_speed = speed;
  for (int i = 1; i <= ports; ++i) {
    node.interfaces.push_back({"h" + std::to_string(i), 0, ""});
  }
  return node;
}

NodeSpec sw(const std::string& name, int ports) {
  NodeSpec node;
  node.name = name;
  node.kind = NodeKind::kSwitch;
  node.default_speed = mbps(100);
  for (int i = 1; i <= ports; ++i) {
    node.interfaces.push_back({"p" + std::to_string(i), 0, ""});
  }
  return node;
}

TEST(CollisionDomains, NoHubsNoDomains) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1"));
  topo.add_node(sw("sw0", 2));
  topo.add_connection({{"A", "eth0"}, {"sw0", "p1"}});
  EXPECT_TRUE(collision_domains(topo).empty());
}

TEST(CollisionDomains, SingleHubGroupsMembers) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1", mbps(10)));
  topo.add_node(host("B", "10.0.0.2", mbps(10)));
  topo.add_node(hub("hub0", 2));
  topo.add_connection({{"A", "eth0"}, {"hub0", "h1"}});
  topo.add_connection({{"B", "eth0"}, {"hub0", "h2"}});

  const auto domains = collision_domains(topo);
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0].hubs, std::vector<std::string>{"hub0"});
  EXPECT_EQ(domains[0].member_connections.size(), 2u);
  EXPECT_TRUE(domains[0].internal_connections.empty());
  EXPECT_EQ(domains[0].speed, mbps(10));
}

TEST(CollisionDomains, ChainedHubsFormOneDomain) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1", mbps(10)));
  topo.add_node(host("B", "10.0.0.2", mbps(10)));
  topo.add_node(hub("hub0", 3));
  topo.add_node(hub("hub1", 3));
  topo.add_connection({{"hub0", "h1"}, {"hub1", "h1"}});
  topo.add_connection({{"A", "eth0"}, {"hub0", "h2"}});
  topo.add_connection({{"B", "eth0"}, {"hub1", "h2"}});

  const auto domains = collision_domains(topo);
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0].hubs.size(), 2u);
  EXPECT_EQ(domains[0].member_connections.size(), 2u);
  EXPECT_EQ(domains[0].internal_connections.size(), 1u);
}

TEST(CollisionDomains, TwoSeparateHubsTwoDomains) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1", mbps(10)));
  topo.add_node(host("B", "10.0.0.2", mbps(10)));
  topo.add_node(hub("hub0", 1));
  topo.add_node(hub("hub1", 1));
  topo.add_connection({{"A", "eth0"}, {"hub0", "h1"}});
  topo.add_connection({{"B", "eth0"}, {"hub1", "h1"}});
  EXPECT_EQ(collision_domains(topo).size(), 2u);
}

TEST(CollisionDomains, DomainSpeedIsSlowestLink) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1", mbps(10)));
  topo.add_node(host("B", "10.0.0.2", mbps(100)));  // faster NIC
  NodeSpec h = hub("hub0", 2, mbps(10));
  topo.add_node(h);
  topo.add_connection({{"A", "eth0"}, {"hub0", "h1"}});
  topo.add_connection({{"B", "eth0"}, {"hub0", "h2"}});
  const auto domains = collision_domains(topo);
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0].speed, mbps(10));
}

TEST(ConnectionDomains, MapsMembersAndInternals) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1", mbps(10)));
  topo.add_node(sw("sw0", 1));
  topo.add_node(hub("hub0", 2));
  const std::size_t c_up = topo.add_connection({{"hub0", "h1"}, {"sw0", "p1"}});
  const std::size_t c_a = topo.add_connection({{"A", "eth0"}, {"hub0", "h2"}});

  const auto domains = collision_domains(topo);
  const auto map = connection_domains(topo, domains);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_TRUE(map[c_up].has_value());
  EXPECT_TRUE(map[c_a].has_value());
  EXPECT_EQ(*map[c_up], *map[c_a]);
}

TEST(ConnectionDomains, SwitchedConnectionsUnmapped) {
  NetworkTopology topo;
  topo.add_node(host("A", "10.0.0.1"));
  topo.add_node(sw("sw0", 1));
  const std::size_t ci = topo.add_connection({{"A", "eth0"}, {"sw0", "p1"}});
  const auto domains = collision_domains(topo);
  const auto map = connection_domains(topo, domains);
  EXPECT_FALSE(map[ci].has_value());
}

TEST(CollisionDomains, LirtssTestbedHasOneHubDomain) {
  const auto specfile = spec::lirtss_testbed();
  const auto domains = collision_domains(specfile.topology);
  ASSERT_EQ(domains.size(), 1u);
  // hub members: uplink to sw0, N1, N2.
  EXPECT_EQ(domains[0].member_connections.size(), 3u);
  EXPECT_EQ(domains[0].speed, mbps(10));
}

}  // namespace
}  // namespace netqos::topo
