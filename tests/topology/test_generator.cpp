// Fabric generator: determinism, structural validity, size targeting,
// and diff self-consistency of generated topologies.
#include "topology/generator.h"

#include <gtest/gtest.h>

#include "spec/parser.h"
#include "spec/writer.h"
#include "topology/diff.h"

namespace netqos::topo {
namespace {

std::size_t count_interfaces(const NetworkTopology& topo) {
  std::size_t n = 0;
  for (const NodeSpec& node : topo.nodes()) n += node.interfaces.size();
  return n;
}

TEST(FabricGenerator, SameSeedYieldsBitIdenticalSpec) {
  FabricConfig config;
  config.target_interfaces = 300;
  config.seed = 77;
  const NetworkTopology a = generate_fabric(config);
  const NetworkTopology b = generate_fabric(config);
  const std::string spec_a =
      spec::write_spec({fabric_network_name(a), a, {}});
  const std::string spec_b =
      spec::write_spec({fabric_network_name(b), b, {}});
  EXPECT_EQ(spec_a, spec_b);
}

TEST(FabricGenerator, DifferentSeedsDifferButOnlyInLabels) {
  FabricConfig config;
  config.target_interfaces = 300;
  config.seed = 1;
  const NetworkTopology a = generate_fabric(config);
  config.seed = 2;
  const NetworkTopology b = generate_fabric(config);
  EXPECT_NE(spec::write_spec({"f", a, {}}), spec::write_spec({"f", b, {}}));
  // Structure is seed-independent: only host OS labels draw randomness.
  EXPECT_EQ(a.nodes().size(), b.nodes().size());
  EXPECT_EQ(a.connections().size(), b.connections().size());
  EXPECT_TRUE(diff_topologies(a, b).empty());  // diff ignores os labels
}

TEST(FabricGenerator, GeneratedFabricValidates) {
  for (const std::size_t target : {100u, 1000u}) {
    FabricConfig config;
    config.target_interfaces = target;
    const NetworkTopology topo = generate_fabric(config);
    EXPECT_TRUE(topo.validate().empty());
    EXPECT_GE(count_interfaces(topo), target);
  }
}

TEST(FabricGenerator, ProjectionMatchesGeneratedCount) {
  FabricConfig config;
  config.target_interfaces = 1000;
  const std::size_t leaves = fabric_leaf_count(config);
  const NetworkTopology topo = generate_fabric(config);
  EXPECT_EQ(count_interfaces(topo),
            projected_interface_count(config, leaves));
}

TEST(FabricGenerator, SpecRoundTripsThroughParser) {
  FabricConfig config;
  config.target_interfaces = 200;
  const NetworkTopology topo = generate_fabric(config);
  const std::string text =
      spec::write_spec({fabric_network_name(topo), topo, {}});
  const spec::SpecFile parsed = spec::parse_spec(text);
  EXPECT_TRUE(diff_topologies(topo, parsed.topology).empty());
  EXPECT_TRUE(diff_topologies(parsed.topology, topo).empty());
  EXPECT_EQ(parsed.topology.nodes().size(), topo.nodes().size());
}

TEST(FabricGenerator, DiffAgainstItselfIsEmpty) {
  FabricConfig config;
  config.target_interfaces = 500;
  const NetworkTopology topo = generate_fabric(config);
  EXPECT_TRUE(diff_topologies(topo, topo).empty());
}

TEST(FabricGenerator, HubSegmentsAppearAtConfiguredCadence) {
  FabricConfig config;
  config.target_interfaces = 1000;
  config.hub_every = 4;
  const NetworkTopology topo = generate_fabric(config);
  std::size_t hubs = 0;
  for (const NodeSpec& node : topo.nodes()) {
    if (node.kind == NodeKind::kHub) ++hubs;
  }
  EXPECT_EQ(hubs, fabric_leaf_count(config) / 4);
  // Hubless configuration generates none.
  config.hub_every = 0;
  const NetworkTopology flat = generate_fabric(config);
  for (const NodeSpec& node : flat.nodes()) {
    EXPECT_NE(node.kind, NodeKind::kHub);
  }
}

}  // namespace
}  // namespace netqos::topo
