// End-to-end telemetry: a shared registry wired through the LIRTSS
// testbed must expose monitor, SNMP, simulator, and link series, and the
// exporters must render them.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "experiments/lirtss.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace netqos {
namespace {

class MonitorTelemetryFixture : public ::testing::Test {
 protected:
  MonitorTelemetryFixture() {
    exp::TestbedOptions options;
    options.metrics = &registry_;
    options.spans = &spans_;
    bed_ = std::make_unique<exp::LirtssTestbed>(options);
    bed_->watch("S1", "N1");
    bed_->run_until(seconds(10));
    bed_->monitor().stop();
  }

  obs::MetricsRegistry registry_;
  obs::SpanRecorder spans_;
  std::unique_ptr<exp::LirtssTestbed> bed_;
};

TEST_F(MonitorTelemetryFixture, RoundCountersMatchMonitorStats) {
  const auto stats = bed_->monitor().stats();
  EXPECT_GT(stats.rounds_completed, 0u);
  const obs::Counter* rounds = registry_.find_counter(
      "netqos_poll_rounds_completed_total", {{"station", "L"}});
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value(), stats.rounds_completed);
  const obs::Counter* polls = registry_.find_counter(
      "netqos_agent_polls_total", {{"station", "L"}});
  ASSERT_NE(polls, nullptr);
  EXPECT_EQ(polls->value(), stats.agent_polls);
}

TEST_F(MonitorTelemetryFixture, PerAgentRttHistogramsRecorded) {
  const obs::HistogramMetric* rtt = registry_.find_histogram(
      "netqos_snmp_rtt_seconds", {{"agent", "N1"}, {"station", "L"}});
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->data().count(), 0u);
  // Simulated LAN RTTs are sub-second.
  EXPECT_LT(rtt->data().percentile(0.99), 1.0);
}

TEST_F(MonitorTelemetryFixture, SimulatorAndLinkCollectorsExport) {
  registry_.collect();
  const obs::Counter* events =
      registry_.find_counter("netqos_sim_events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->value(), bed_->simulator().events_executed());
  EXPECT_GT(events->value(), 0u);

  // Every link in the testbed exports a frames counter; at least the
  // monitor station's own uplink must have carried traffic.
  registry_.collect();
  std::uint64_t frames = 0;
  for (const auto& link : bed_->network().links()) {
    frames += link->frames_carried();
  }
  EXPECT_GT(frames, 0u);
  std::ostringstream out;
  registry_.render_prometheus(out);
  EXPECT_NE(out.str().find("netqos_link_frames_total{link=\""),
            std::string::npos);
}

TEST_F(MonitorTelemetryFixture, PrometheusOutputCarriesRequiredSeries) {
  std::ostringstream out;
  registry_.render_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("netqos_poll_rounds_completed_total{station=\"L\"}"),
            std::string::npos);
  EXPECT_NE(text.find("netqos_snmp_rtt_seconds_bucket{agent=\""),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE netqos_poll_round_duration_seconds histogram"),
            std::string::npos);
}

TEST_F(MonitorTelemetryFixture, SpansNestPollsInsideRounds) {
  ASSERT_FALSE(spans_.spans().empty());
  EXPECT_EQ(spans_.open_spans(), 0u);
  bool saw_round = false, saw_poll = false;
  for (const auto& span : spans_.spans()) {
    if (span.name == "poll_round") saw_round = true;
    if (span.name == "poll_agent") saw_poll = true;
    EXPECT_TRUE(span.finished());
  }
  EXPECT_TRUE(saw_round);
  EXPECT_TRUE(saw_poll);
}

TEST(MonitorTelemetry, PrivateRegistryKeepsStatsWithoutSharedOne) {
  // No registry injected: the monitor still serves stats() through its
  // own private registry.
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  bed.run_until(seconds(6));
  EXPECT_GT(bed.monitor().stats().rounds_completed, 0u);
  EXPECT_NE(bed.monitor().metrics().find_counter(
                "netqos_poll_rounds_completed_total", {{"station", "L"}}),
            nullptr);
}

}  // namespace
}  // namespace netqos
