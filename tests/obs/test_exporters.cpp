#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace netqos::obs {
namespace {

TEST(PrometheusExporter, GoldenTextForCounterAndGauge) {
  MetricsRegistry registry;
  registry.counter("netqos_polls_total", "Polls issued",
                   {{"station", "L"}}).inc(7);
  registry.counter("netqos_polls_total", "Polls issued",
                   {{"station", "M"}}).inc(2);
  registry.gauge("netqos_queue_depth", "Pending events").set(3);

  std::ostringstream out;
  registry.render_prometheus(out);
  EXPECT_EQ(out.str(),
            "# HELP netqos_polls_total Polls issued\n"
            "# TYPE netqos_polls_total counter\n"
            "netqos_polls_total{station=\"L\"} 7\n"
            "netqos_polls_total{station=\"M\"} 2\n"
            "# HELP netqos_queue_depth Pending events\n"
            "# TYPE netqos_queue_depth gauge\n"
            "netqos_queue_depth 3\n");
}

TEST(PrometheusExporter, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  HistogramMetric& h = registry.histogram("netqos_rtt_seconds", "RTT",
                                          {0.5, 1.5}, {{"agent", "S1"}});
  h.observe(0.2);
  h.observe(0.3);
  h.observe(1.0);
  h.observe(9.0);  // overflow

  std::ostringstream out;
  registry.render_prometheus(out);
  EXPECT_EQ(out.str(),
            "# HELP netqos_rtt_seconds RTT\n"
            "# TYPE netqos_rtt_seconds histogram\n"
            "netqos_rtt_seconds_bucket{agent=\"S1\",le=\"0.5\"} 2\n"
            "netqos_rtt_seconds_bucket{agent=\"S1\",le=\"1.5\"} 3\n"
            "netqos_rtt_seconds_bucket{agent=\"S1\",le=\"+Inf\"} 4\n"
            "netqos_rtt_seconds_sum{agent=\"S1\"} 10.5\n"
            "netqos_rtt_seconds_count{agent=\"S1\"} 4\n");
}

TEST(PrometheusExporter, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("netqos_odd_total", "h",
                   {{"path", "a\"b\\c\nd"}}).inc();
  std::ostringstream out;
  registry.render_prometheus(out);
  EXPECT_NE(out.str().find(
                "netqos_odd_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(PrometheusExporter, EscapesHelpText) {
  // Backslash and newline must be escaped on HELP lines (quotes stay
  // literal there, unlike label values) or a multi-line help string
  // breaks the exposition's line framing.
  MetricsRegistry registry;
  registry.counter("netqos_weird_total", "first\nsecond \\ \"q\"").inc();
  std::ostringstream out;
  registry.render_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP netqos_weird_total "
                      "first\\nsecond \\\\ \"q\"\n"),
            std::string::npos)
      << text;
  // Exactly one physical line may start with "# HELP".
  std::size_t help_lines = 0;
  for (std::size_t pos = text.find("# HELP"); pos != std::string::npos;
       pos = text.find("# HELP", pos + 1)) {
    help_lines++;
  }
  EXPECT_EQ(help_lines, 1u);
}

TEST(PrometheusExporter, LabelAndHelpEscapingDisagreeOnQuotes) {
  // The same payload goes through both paths: quoted in the label value,
  // untouched in the help text.
  MetricsRegistry registry;
  registry.counter("netqos_mixed_total", "say \"hi\"",
                   {{"who", "say \"hi\""}}).inc();
  std::ostringstream out;
  registry.render_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP netqos_mixed_total say \"hi\"\n"),
            std::string::npos);
  EXPECT_NE(text.find("netqos_mixed_total{who=\"say \\\"hi\\\"\"} 1\n"),
            std::string::npos);
}

TEST(JsonlExporter, OneObjectPerSeries) {
  MetricsRegistry registry;
  registry.counter("netqos_polls_total", "h", {{"station", "L"}}).inc(5);
  registry.gauge("netqos_depth", "h").set(2.5);

  std::ostringstream out;
  registry.render_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"metric\":\"netqos_depth\",\"type\":\"gauge\","
            "\"labels\":{},\"value\":2.5}\n"
            "{\"metric\":\"netqos_polls_total\",\"type\":\"counter\","
            "\"labels\":{\"station\":\"L\"},\"value\":5}\n");
}

TEST(JsonlExporter, HistogramCarriesBucketArray) {
  MetricsRegistry registry;
  HistogramMetric& h =
      registry.histogram("netqos_rtt_seconds", "h", {0.5});
  h.observe(0.1);
  h.observe(2.0);

  std::ostringstream out;
  registry.render_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"metric\":\"netqos_rtt_seconds\",\"type\":\"histogram\","
            "\"labels\":{},\"count\":2,\"sum\":2.1,\"buckets\":["
            "{\"le\":0.5,\"count\":1},{\"le\":\"+Inf\",\"count\":1}]}\n");
}

TEST(JsonEscape, ControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(RenderRunsCollectors, PullStyleValuesAreFresh) {
  MetricsRegistry registry;
  Counter& c = registry.counter("netqos_events_total", "h");
  std::uint64_t external = 0;
  registry.add_collector([&] { c.set_total(external); });

  external = 11;
  std::ostringstream out;
  registry.render_prometheus(out);
  EXPECT_NE(out.str().find("netqos_events_total 11\n"), std::string::npos);
}

}  // namespace
}  // namespace netqos::obs
