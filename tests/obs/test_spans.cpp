#include "obs/span.h"

#include <gtest/gtest.h>

#include <sstream>

namespace netqos::obs {
namespace {

TEST(SpanRecorder, NestedSpansKeepSchedulingOrder) {
  SpanRecorder recorder;
  const auto round = recorder.begin("poll_round", "monitor", 1000);
  const auto poll_a = recorder.begin("poll_agent", "monitor", 1000,
                                     {{"agent", "S1"}});
  const auto poll_b = recorder.begin("poll_agent", "monitor", 1200,
                                     {{"agent", "S2"}});
  EXPECT_EQ(recorder.open_spans(), 3u);
  recorder.end(poll_a, 1500);
  recorder.end(poll_b, 1800);
  recorder.end(round, 2000);
  EXPECT_EQ(recorder.open_spans(), 0u);

  ASSERT_EQ(recorder.spans().size(), 3u);
  // Append order is begin order: the enclosing round comes first.
  EXPECT_EQ(recorder.spans()[0].name, "poll_round");
  EXPECT_EQ(recorder.spans()[1].args.front().second, "S1");
  EXPECT_EQ(recorder.spans()[0].duration(), 1000);
  EXPECT_EQ(recorder.spans()[2].duration(), 600);
  // The nested spans lie inside the round span.
  EXPECT_GE(recorder.spans()[1].begin, recorder.spans()[0].begin);
  EXPECT_LE(recorder.spans()[2].end, recorder.spans()[0].end);
}

TEST(SpanRecorder, EndIsIdempotentAndIgnoresBadIds) {
  SpanRecorder recorder;
  const auto id = recorder.begin("s", "c", 100);
  recorder.end(id, 200);
  recorder.end(id, 999);  // already finished; ignored
  EXPECT_EQ(recorder.spans()[0].end, 200);
  recorder.end(12345, 300);  // out of range; ignored
  EXPECT_EQ(recorder.open_spans(), 0u);
}

TEST(SpanRecorder, CapacityDropsInsteadOfGrowing) {
  SpanRecorder recorder(/*capacity=*/2);
  recorder.begin("a", "c", 0);
  recorder.begin("b", "c", 0);
  const auto dropped_id = recorder.begin("c", "c", 0);
  EXPECT_EQ(recorder.spans().size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1u);
  recorder.end(dropped_id, 50);  // must not touch recorded spans
  EXPECT_FALSE(recorder.spans()[0].finished());
  EXPECT_FALSE(recorder.spans()[1].finished());
}

TEST(SpanRecorder, WritesCompleteAndBeginEvents) {
  SpanRecorder recorder;
  const auto done = recorder.begin("round", "monitor", 2'000'000,
                                   {{"station", "L"}});
  recorder.end(done, 3'500'000);
  recorder.begin("half", "monitor", 4'000'000);  // left open

  std::ostringstream out;
  recorder.write_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"round\",\"cat\":\"monitor\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":1,\"ts\":2000.000,\"dur\":1500.000,"
            "\"args\":{\"station\":\"L\"}}\n"
            "{\"name\":\"half\",\"cat\":\"monitor\",\"ph\":\"B\","
            "\"pid\":1,\"tid\":1,\"ts\":4000.000,\"args\":{}}\n");
}

}  // namespace
}  // namespace netqos::obs
