#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace netqos::obs {
namespace {

TEST(MetricsRegistry, CounterAccumulatesAndIsStable) {
  MetricsRegistry registry;
  Counter& c = registry.counter("netqos_test_total", "help");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Same (name, labels) returns the same instrument.
  EXPECT_EQ(&registry.counter("netqos_test_total", "help"), &c);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry registry;
  Counter& a = registry.counter("netqos_x_total", "h",
                                {{"agent", "S1"}, {"station", "L"}});
  Counter& b = registry.counter("netqos_x_total", "h",
                                {{"station", "L"}, {"agent", "S1"}});
  EXPECT_EQ(&a, &b);
  Counter& other =
      registry.counter("netqos_x_total", "h", {{"agent", "S2"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("netqos_dual", "h");
  EXPECT_THROW(registry.gauge("netqos_dual", "h"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("netqos_dual", "h", {1.0}),
               std::invalid_argument);
}

TEST(MetricsRegistry, InvalidNameThrows) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("", "h"), std::invalid_argument);
  EXPECT_THROW(registry.counter("9starts_with_digit", "h"),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("has space", "h"), std::invalid_argument);
}

TEST(MetricsRegistry, GaugeMoves) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("netqos_queue_depth", "h");
  g.set(7.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
}

TEST(MetricsRegistry, HistogramFamilySharesBucketLayout) {
  MetricsRegistry registry;
  HistogramMetric& h1 = registry.histogram("netqos_rtt_seconds", "h",
                                           {0.001, 0.01}, {{"agent", "A"}});
  // Second series passes different bounds; the family layout wins.
  HistogramMetric& h2 = registry.histogram("netqos_rtt_seconds", "h",
                                           {9.0}, {{"agent", "B"}});
  EXPECT_EQ(h2.data().bounds(), h1.data().bounds());
  h1.observe(0.005);
  EXPECT_EQ(h1.data().count(), 1u);
  EXPECT_EQ(h2.data().count(), 0u);
}

TEST(MetricsRegistry, FindLocatesSeriesByLabels) {
  MetricsRegistry registry;
  registry.counter("netqos_polls_total", "h", {{"station", "L"}}).inc(3);
  const Counter* found =
      registry.find_counter("netqos_polls_total", {{"station", "L"}});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 3u);
  EXPECT_EQ(registry.find_counter("netqos_polls_total"), nullptr);
  EXPECT_EQ(registry.find_counter("netqos_missing_total"), nullptr);
  EXPECT_EQ(registry.find_gauge("netqos_polls_total"), nullptr);
}

TEST(MetricsRegistry, CollectorsRunOnCollect) {
  MetricsRegistry registry;
  Counter& events = registry.counter("netqos_events_total", "h");
  std::uint64_t source = 41;
  registry.add_collector([&] { events.set_total(source); });
  registry.collect();
  EXPECT_EQ(events.value(), 41u);
  source = 42;
  registry.collect();
  EXPECT_EQ(events.value(), 42u);
}

}  // namespace
}  // namespace netqos::obs
