// Property tests over randomly generated (but valid) topologies:
// spec round-trips, traversal invariants, domain invariants, plan
// invariants. Parameterized over seeds.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "monitor/plan.h"
#include "spec/writer.h"
#include "topology/domains.h"
#include "topology/path.h"

namespace netqos {
namespace {

/// Generates a random valid LAN: a tree of switches, hubs hanging off
/// some switch ports, hosts on switch ports and hubs. Every interface
/// used by exactly one connection; hosts have IPs; some hosts/switches
/// run agents.
topo::NetworkTopology random_topology(std::uint64_t seed,
                                      std::size_t* snmp_nodes = nullptr) {
  Xoshiro256 rng(seed);
  topo::NetworkTopology topo;
  int ip = 1;
  std::size_t agents = 0;

  const int switches = static_cast<int>(rng.uniform_int(1, 4));
  // Switch nodes with generous port counts.
  for (int s = 0; s < switches; ++s) {
    topo::NodeSpec sw;
    sw.name = "sw" + std::to_string(s);
    sw.kind = topo::NodeKind::kSwitch;
    sw.default_speed = mbps(100);
    sw.snmp_enabled = rng.uniform() < 0.7;
    if (sw.snmp_enabled) {
      sw.management_ipv4 = "10.250.0." + std::to_string(s + 1);
      ++agents;
    }
    for (int p = 0; p < 24; ++p) {
      sw.interfaces.push_back({"p" + std::to_string(p), 0, ""});
    }
    topo.add_node(sw);
  }
  // Tree of switches: switch s>=1 uplinks to a random earlier switch.
  std::vector<int> next_port(switches, 0);
  for (int s = 1; s < switches; ++s) {
    const int parent = static_cast<int>(rng.uniform_int(0, s - 1));
    topo.add_connection(
        {{"sw" + std::to_string(s),
          "p" + std::to_string(next_port[s]++)},
         {"sw" + std::to_string(parent),
          "p" + std::to_string(next_port[parent]++)}});
  }

  // Hubs on random switches.
  const int hubs = static_cast<int>(rng.uniform_int(0, 2));
  std::vector<std::string> hub_names;
  std::vector<int> hub_next_port;
  for (int h = 0; h < hubs; ++h) {
    topo::NodeSpec hub;
    hub.name = "hub" + std::to_string(h);
    hub.kind = topo::NodeKind::kHub;
    hub.default_speed = mbps(10);
    for (int p = 0; p < 8; ++p) {
      hub.interfaces.push_back({"h" + std::to_string(p), 0, ""});
    }
    topo.add_node(hub);
    const int sw = static_cast<int>(rng.uniform_int(0, switches - 1));
    topo.add_connection({{hub.name, "h0"},
                         {"sw" + std::to_string(sw),
                          "p" + std::to_string(next_port[sw]++)}});
    hub_names.push_back(hub.name);
    hub_next_port.push_back(1);
  }

  // Hosts.
  const int hosts = static_cast<int>(rng.uniform_int(2, 12));
  for (int h = 0; h < hosts; ++h) {
    topo::NodeSpec host;
    host.name = "host" + std::to_string(h);
    host.kind = topo::NodeKind::kHost;
    host.snmp_enabled = rng.uniform() < 0.5;
    if (host.snmp_enabled) ++agents;
    host.interfaces.push_back(
        {"eth0", rng.uniform() < 0.3 ? mbps(10) : mbps(100),
         "10.0." + std::to_string(ip / 250) + "." +
             std::to_string(ip % 250 + 1)});
    ++ip;
    topo.add_node(host);

    // Attach to a hub (if any and coin-flip) or a switch.
    const bool to_hub = !hub_names.empty() && rng.uniform() < 0.4;
    if (to_hub) {
      const int h_idx =
          static_cast<int>(rng.uniform_int(0, hub_names.size() - 1));
      if (hub_next_port[h_idx] < 8) {
        topo.add_connection(
            {{host.name, "eth0"},
             {hub_names[h_idx], "h" + std::to_string(hub_next_port[h_idx]++)}});
        continue;
      }
    }
    const int sw = static_cast<int>(rng.uniform_int(0, switches - 1));
    topo.add_connection({{host.name, "eth0"},
                         {"sw" + std::to_string(sw),
                          "p" + std::to_string(next_port[sw]++)}});
  }
  if (snmp_nodes != nullptr) *snmp_nodes = agents;
  return topo;
}

class RandomTopology : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopology, GeneratedTopologyIsValid) {
  const auto topo = random_topology(GetParam());
  EXPECT_TRUE(topo.validate().empty());
}

TEST_P(RandomTopology, SpecRoundTripPreservesStructure) {
  const auto topo = random_topology(GetParam());
  spec::SpecFile file;
  file.network_name = "random";
  file.topology = topo;
  const spec::SpecFile back = spec::parse_spec(spec::write_spec(file));

  ASSERT_EQ(back.topology.nodes().size(), topo.nodes().size());
  ASSERT_EQ(back.topology.connections().size(), topo.connections().size());
  for (std::size_t i = 0; i < topo.nodes().size(); ++i) {
    EXPECT_EQ(back.topology.nodes()[i].name, topo.nodes()[i].name);
    EXPECT_EQ(back.topology.nodes()[i].kind, topo.nodes()[i].kind);
    EXPECT_EQ(back.topology.nodes()[i].snmp_enabled,
              topo.nodes()[i].snmp_enabled);
    EXPECT_EQ(back.topology.nodes()[i].interfaces.size(),
              topo.nodes()[i].interfaces.size());
  }
}

TEST_P(RandomTopology, AllHostPairsConnectedByTreeTraversal) {
  // The generator builds a tree, so every pair of hosts must be
  // reachable, both traversals agree on existence, and BFS never beats
  // DFS by... rather: BFS length <= DFS length.
  const auto topo = random_topology(GetParam());
  std::vector<std::string> hosts;
  for (const auto& node : topo.nodes()) {
    if (node.kind == topo::NodeKind::kHost) hosts.push_back(node.name);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size() && j < i + 4; ++j) {
      const auto dfs = topo::traverse_recursive(topo, hosts[i], hosts[j]);
      const auto bfs = topo::shortest_path(topo, hosts[i], hosts[j]);
      ASSERT_TRUE(dfs.has_value()) << hosts[i] << " " << hosts[j];
      ASSERT_TRUE(bfs.has_value());
      EXPECT_LE(bfs->size(), dfs->size());
      // In a tree the simple path is unique: they must be equal.
      EXPECT_EQ(*dfs, *bfs);

      // Path is a chain visiting distinct nodes.
      const auto nodes = topo::path_nodes(topo, *dfs, hosts[i]);
      std::set<std::string> unique(nodes.begin(), nodes.end());
      EXPECT_EQ(unique.size(), nodes.size());
      EXPECT_EQ(nodes.front(), hosts[i]);
      EXPECT_EQ(nodes.back(), hosts[j]);
    }
  }
}

TEST_P(RandomTopology, DomainsPartitionHubConnections) {
  const auto topo = random_topology(GetParam());
  const auto domains = topo::collision_domains(topo);
  const auto map = topo::connection_domains(topo, domains);

  // Every connection touching a hub is in exactly one domain; others in
  // none.
  for (std::size_t ci = 0; ci < topo.connections().size(); ++ci) {
    const auto& conn = topo.connections()[ci];
    bool touches_hub = false;
    for (const auto* ep : {&conn.a, &conn.b}) {
      if (topo.find_node(ep->node)->kind == topo::NodeKind::kHub) {
        touches_hub = true;
      }
    }
    EXPECT_EQ(map[ci].has_value(), touches_hub) << conn.to_string();
  }
  // Domain speeds are positive when domains exist.
  for (const auto& dom : domains) {
    EXPECT_GT(dom.speed, 0u);
    EXPECT_FALSE(dom.hubs.empty());
  }
}

TEST_P(RandomTopology, PollPlanInvariants) {
  std::size_t agents = 0;
  const auto topo = random_topology(GetParam(), &agents);
  const auto plan = mon::PollPlan::build(topo);

  // Only agents that measure something are polled: a subset of the
  // SNMP-capable nodes (a switch whose neighbours all run agents is
  // never chosen).
  EXPECT_LE(plan.agents().size(), agents);
  for (const auto& task : plan.agents()) {
    EXPECT_TRUE(topo.find_node(task.node)->snmp_enabled);
    EXPECT_FALSE(task.interfaces.empty());
  }

  for (std::size_t ci = 0; ci < topo.connections().size(); ++ci) {
    const auto& point = plan.measurement_for(ci);
    if (!point.has_value()) continue;
    // Measurement point is one of the connection's endpoints...
    const auto& conn = topo.connections()[ci];
    EXPECT_TRUE(conn.touches(point->node)) << conn.to_string();
    EXPECT_EQ(conn.end_at(point->node).interface, point->interface);
    // ... and that node really runs an agent.
    const auto* node = topo.find_node(point->node);
    EXPECT_TRUE(node->snmp_enabled);
    // Hosts are preferred: via_switch only when no endpoint host has an
    // agent.
    if (point->via_switch) {
      for (const auto* ep : {&conn.a, &conn.b}) {
        const auto* end_node = topo.find_node(ep->node);
        if (end_node->kind == topo::NodeKind::kHost) {
          EXPECT_FALSE(end_node->snmp_enabled);
        }
      }
    }
  }

  // Unmonitorable connections have no SNMP-capable endpoint.
  for (std::size_t ci : plan.unmonitorable()) {
    EXPECT_FALSE(plan.measurement_for(ci).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopology,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace netqos
