// Robustness fuzzing: malformed inputs must raise typed errors, never
// crash or hang. Parameterized over seeds.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "spec/lexer.h"
#include "spec/parser.h"
#include "snmp/ber.h"
#include "snmp/pdu.h"

namespace netqos {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, BerDecoderNeverCrashesOnRandomBytes) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes junk(rng.uniform_int(0, 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)snmp::decode_message(junk);
    } catch (const snmp::BerError&) {
    } catch (const BufferUnderflow&) {
    }
  }
}

TEST_P(FuzzSeeds, BerDecoderSurvivesTruncatedValidMessages) {
  Xoshiro256 rng(GetParam());
  snmp::Message msg;
  msg.pdu.type = snmp::PduType::kGetResponse;
  msg.pdu.varbinds = {
      {snmp::Oid({1, 3, 6, 1, 2, 1, 1, 3, 0}),
       snmp::SnmpValue(snmp::TimeTicks{123})},
      {snmp::Oid({1, 3, 6, 1, 2, 1, 2, 2, 1, 10, 1}),
       snmp::SnmpValue(snmp::Counter32{456})},
  };
  const Bytes wire = snmp::encode_message(msg);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    try {
      (void)snmp::decode_message(truncated);
      // Decoding a strict prefix to success is impossible: the outer
      // sequence length would overrun.
      FAIL() << "truncated message decoded at cut " << cut;
    } catch (const snmp::BerError&) {
    } catch (const BufferUnderflow&) {
    }
  }
}

TEST_P(FuzzSeeds, BerDecoderSurvivesBitFlips) {
  Xoshiro256 rng(GetParam() ^ 0xf11b);
  snmp::Message msg;
  msg.pdu.type = snmp::PduType::kGetRequest;
  msg.pdu.varbinds = {{snmp::Oid({1, 3, 6, 1, 2, 1, 1, 1, 0}),
                       snmp::SnmpValue(snmp::Null{})}};
  const Bytes wire = snmp::encode_message(msg);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = wire;
    const std::size_t byte = rng.uniform_int(0, mutated.size() - 1);
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    try {
      (void)snmp::decode_message(mutated);  // may succeed with new values
    } catch (const snmp::BerError&) {
    } catch (const BufferUnderflow&) {
    }
  }
}

TEST_P(FuzzSeeds, LexerNeverCrashesOnRandomText) {
  Xoshiro256 rng(GetParam() ^ 0x1e4);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t length = rng.uniform_int(0, 200);
    for (std::size_t i = 0; i < length; ++i) {
      text += static_cast<char>(rng.uniform_int(32, 126));
    }
    try {
      (void)spec::lex(text);
    } catch (const spec::ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, ParserNeverCrashesOnTokenSoup) {
  Xoshiro256 rng(GetParam() ^ 0x9a9a);
  const char* words[] = {"network", "host",    "switch", "hub",
                         "interface", "connect", "snmp",   "on",
                         "off",       "speed",   "address", "os",
                         "qos",       "path",    "min_available",
                         "{",         "}",       ";",       "<->",
                         "n1",        "10.0.0.1", "100Mbps", "\"x\""};
  for (int iter = 0; iter < 500; ++iter) {
    std::string source;
    const std::size_t count = rng.uniform_int(0, 40);
    for (std::size_t i = 0; i < count; ++i) {
      source += words[rng.uniform_int(0, std::size(words) - 1)];
      source += ' ';
    }
    try {
      (void)spec::parse_spec(source);
    } catch (const spec::ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, OidParseRobust) {
  Xoshiro256 rng(GetParam() ^ 0x01d);
  for (int iter = 0; iter < 1000; ++iter) {
    std::string text;
    const std::size_t length = rng.uniform_int(0, 24);
    for (std::size_t i = 0; i < length; ++i) {
      const char chars[] = "0123456789..x";
      text += chars[rng.uniform_int(0, sizeof(chars) - 2)];
    }
    try {
      const auto oid = snmp::Oid::parse(text);
      // If parsing succeeded, to_string must round-trip.
      EXPECT_EQ(snmp::Oid::parse(oid.to_string()), oid);
    } catch (const std::invalid_argument&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11u, 222u, 3333u, 44444u));

}  // namespace
}  // namespace netqos
