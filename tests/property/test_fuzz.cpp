// Robustness fuzzing: malformed inputs must raise typed errors, never
// crash or hang. Parameterized over seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/network.h"
#include "netsim/simulator.h"
#include "spec/lexer.h"
#include "spec/parser.h"
#include "snmp/ber.h"
#include "snmp/client.h"
#include "snmp/pdu.h"
#include "snmp/walker.h"

namespace netqos {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, BerDecoderNeverCrashesOnRandomBytes) {
  Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes junk(rng.uniform_int(0, 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)snmp::decode_message(junk);
    } catch (const snmp::BerError&) {
    } catch (const BufferUnderflow&) {
    }
  }
}

TEST_P(FuzzSeeds, BerDecoderSurvivesTruncatedValidMessages) {
  Xoshiro256 rng(GetParam());
  snmp::Message msg;
  msg.pdu.type = snmp::PduType::kGetResponse;
  msg.pdu.varbinds = {
      {snmp::Oid({1, 3, 6, 1, 2, 1, 1, 3, 0}),
       snmp::SnmpValue(snmp::TimeTicks{123})},
      {snmp::Oid({1, 3, 6, 1, 2, 1, 2, 2, 1, 10, 1}),
       snmp::SnmpValue(snmp::Counter32{456})},
  };
  const Bytes wire = snmp::encode_message(msg);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    try {
      (void)snmp::decode_message(truncated);
      // Decoding a strict prefix to success is impossible: the outer
      // sequence length would overrun.
      FAIL() << "truncated message decoded at cut " << cut;
    } catch (const snmp::BerError&) {
    } catch (const BufferUnderflow&) {
    }
  }
}

TEST_P(FuzzSeeds, BerDecoderSurvivesBitFlips) {
  Xoshiro256 rng(GetParam() ^ 0xf11b);
  snmp::Message msg;
  msg.pdu.type = snmp::PduType::kGetRequest;
  msg.pdu.varbinds = {{snmp::Oid({1, 3, 6, 1, 2, 1, 1, 1, 0}),
                       snmp::SnmpValue(snmp::Null{})}};
  const Bytes wire = snmp::encode_message(msg);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = wire;
    const std::size_t byte = rng.uniform_int(0, mutated.size() - 1);
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    try {
      (void)snmp::decode_message(mutated);  // may succeed with new values
    } catch (const snmp::BerError&) {
    } catch (const BufferUnderflow&) {
    }
  }
}

TEST_P(FuzzSeeds, LexerNeverCrashesOnRandomText) {
  Xoshiro256 rng(GetParam() ^ 0x1e4);
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t length = rng.uniform_int(0, 200);
    for (std::size_t i = 0; i < length; ++i) {
      text += static_cast<char>(rng.uniform_int(32, 126));
    }
    try {
      (void)spec::lex(text);
    } catch (const spec::ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, ParserNeverCrashesOnTokenSoup) {
  Xoshiro256 rng(GetParam() ^ 0x9a9a);
  const char* words[] = {"network", "host",    "switch", "hub",
                         "interface", "connect", "snmp",   "on",
                         "off",       "speed",   "address", "os",
                         "qos",       "path",    "min_available",
                         "{",         "}",       ";",       "<->",
                         "n1",        "10.0.0.1", "100Mbps", "\"x\""};
  for (int iter = 0; iter < 500; ++iter) {
    std::string source;
    const std::size_t count = rng.uniform_int(0, 40);
    for (std::size_t i = 0; i < count; ++i) {
      source += words[rng.uniform_int(0, std::size(words) - 1)];
      source += ' ';
    }
    try {
      (void)spec::parse_spec(source);
    } catch (const spec::ParseError&) {
    }
  }
}

TEST_P(FuzzSeeds, OidParseRobust) {
  Xoshiro256 rng(GetParam() ^ 0x01d);
  for (int iter = 0; iter < 1000; ++iter) {
    std::string text;
    const std::size_t length = rng.uniform_int(0, 24);
    for (std::size_t i = 0; i < length; ++i) {
      const char chars[] = "0123456789..x";
      text += chars[rng.uniform_int(0, sizeof(chars) - 2)];
    }
    try {
      const auto oid = snmp::Oid::parse(text);
      // If parsing succeeded, to_string must round-trip.
      EXPECT_EQ(snmp::Oid::parse(oid.to_string()), oid);
    } catch (const std::invalid_argument&) {
    }
  }
}

// --- PDU / varbind layer -------------------------------------------------

snmp::Oid random_oid(Xoshiro256& rng) {
  std::vector<std::uint32_t> arcs;
  arcs.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 2)));
  arcs.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, 39)));
  const std::size_t extra = rng.uniform_int(0, 8);
  for (std::size_t i = 0; i < extra; ++i) {
    // Mix single-septet arcs with ones that need the full 32-bit base-128
    // encoding.
    arcs.push_back(rng.uniform_int(0, 1) == 0
                       ? static_cast<std::uint32_t>(rng.uniform_int(0, 127))
                       : static_cast<std::uint32_t>(rng.next()));
  }
  return snmp::Oid(std::move(arcs));
}

snmp::SnmpValue random_value(Xoshiro256& rng) {
  switch (rng.uniform_int(0, 9)) {
    case 0: return snmp::Null{};
    case 1: return static_cast<std::int64_t>(rng.next());
    case 2: {
      std::string text;
      const std::size_t length = rng.uniform_int(0, 16);
      for (std::size_t i = 0; i < length; ++i) {
        text += static_cast<char>(rng.uniform_int(0, 255));
      }
      return text;
    }
    case 3: return random_oid(rng);
    case 4: return snmp::IpAddressValue{static_cast<std::uint32_t>(rng.next())};
    case 5: return snmp::Counter32{static_cast<std::uint32_t>(rng.next())};
    case 6: return snmp::Gauge32{static_cast<std::uint32_t>(rng.next())};
    case 7: return snmp::TimeTicks{static_cast<std::uint32_t>(rng.next())};
    case 8: return snmp::Counter64{rng.next()};
    default:
      return static_cast<snmp::VarBindException>(0x80 +
                                                 rng.uniform_int(0, 2));
  }
}

snmp::Message random_message(Xoshiro256& rng) {
  snmp::Message msg;
  msg.version =
      rng.uniform_int(0, 1) == 0 ? snmp::SnmpVersion::kV1
                                 : snmp::SnmpVersion::kV2c;
  msg.community.clear();
  const std::size_t community_len = rng.uniform_int(0, 12);
  for (std::size_t i = 0; i < community_len; ++i) {
    msg.community += static_cast<char>(rng.uniform_int(32, 126));
  }
  if (rng.uniform_int(0, 7) == 0) {
    // Classic v1 Trap-PDU (distinct body layout).
    msg.version = snmp::SnmpVersion::kV1;
    snmp::TrapV1Pdu trap;
    trap.enterprise = random_oid(rng);
    trap.agent_addr = static_cast<std::uint32_t>(rng.next());
    trap.generic_trap = static_cast<snmp::GenericTrap>(rng.uniform_int(0, 6));
    trap.specific_trap = static_cast<std::int32_t>(rng.next());
    trap.time_stamp_ticks = static_cast<std::uint32_t>(rng.next());
    const std::size_t count = rng.uniform_int(0, 3);
    for (std::size_t i = 0; i < count; ++i) {
      trap.varbinds.push_back({random_oid(rng), random_value(rng)});
    }
    msg.trap_v1 = std::move(trap);
    return msg;
  }
  const snmp::PduType types[] = {
      snmp::PduType::kGetRequest,  snmp::PduType::kGetNextRequest,
      snmp::PduType::kGetResponse, snmp::PduType::kSetRequest,
      snmp::PduType::kGetBulkRequest, snmp::PduType::kSnmpV2Trap,
  };
  msg.pdu.type = types[rng.uniform_int(0, std::size(types) - 1)];
  msg.pdu.request_id = static_cast<std::int32_t>(rng.next());
  msg.pdu.error_status = static_cast<snmp::ErrorStatus>(rng.uniform_int(0, 5));
  msg.pdu.error_index = static_cast<std::int32_t>(rng.uniform_int(0, 64));
  const std::size_t count = rng.uniform_int(0, 5);
  for (std::size_t i = 0; i < count; ++i) {
    msg.pdu.varbinds.push_back({random_oid(rng), random_value(rng)});
  }
  return msg;
}

void expect_same_message(const snmp::Message& a, const snmp::Message& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.community, b.community);
  ASSERT_EQ(a.trap_v1.has_value(), b.trap_v1.has_value());
  if (a.trap_v1.has_value()) {
    EXPECT_EQ(a.trap_v1->enterprise, b.trap_v1->enterprise);
    EXPECT_EQ(a.trap_v1->agent_addr, b.trap_v1->agent_addr);
    EXPECT_EQ(a.trap_v1->generic_trap, b.trap_v1->generic_trap);
    EXPECT_EQ(a.trap_v1->specific_trap, b.trap_v1->specific_trap);
    EXPECT_EQ(a.trap_v1->time_stamp_ticks, b.trap_v1->time_stamp_ticks);
    EXPECT_EQ(a.trap_v1->varbinds, b.trap_v1->varbinds);
    return;
  }
  EXPECT_EQ(a.pdu.type, b.pdu.type);
  EXPECT_EQ(a.pdu.request_id, b.pdu.request_id);
  EXPECT_EQ(a.pdu.error_status, b.pdu.error_status);
  EXPECT_EQ(a.pdu.error_index, b.pdu.error_index);
  EXPECT_EQ(a.pdu.varbinds, b.pdu.varbinds);
}

TEST_P(FuzzSeeds, PduCodecRoundTripsRandomMessages) {
  Xoshiro256 rng(GetParam() ^ 0x9d0);
  for (int iter = 0; iter < 500; ++iter) {
    const snmp::Message msg = random_message(rng);
    const Bytes wire = snmp::encode_message(msg);
    const snmp::Message decoded = snmp::decode_message(wire);
    expect_same_message(msg, decoded);
    // Re-encoding is canonical: same bytes out.
    EXPECT_EQ(snmp::encode_message(decoded), wire);
  }
}

TEST_P(FuzzSeeds, PduDecoderSurvivesBitFlippedMessages) {
  Xoshiro256 rng(GetParam() ^ 0xbf11);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = snmp::encode_message(random_message(rng));
    const std::size_t flips = rng.uniform_int(1, 4);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t byte = rng.uniform_int(0, mutated.size() - 1);
      mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    snmp::Message decoded;
    try {
      decoded = snmp::decode_message(mutated);
    } catch (const snmp::BerError&) {
      continue;
    } catch (const BufferUnderflow&) {
      continue;
    }
    // Whatever the flips produced, a successfully decoded message must
    // re-encode and round-trip to the same fields.
    const Bytes wire = snmp::encode_message(decoded);
    expect_same_message(decoded, snmp::decode_message(wire));
  }
}

// --- Walker vs adversarial agent ----------------------------------------
//
// A raw responder on UDP/161 answers each walker request with mutated
// traffic: truncations, bit flips, non-increasing OIDs, empty varbind
// lists, garbage, exceptions, and error PDUs. Every walk must complete
// (callback fires — no crash, no hang, no infinite GETNEXT loop), and
// whatever is collected must be strictly increasing inside the subtree.

void run_adversarial_walks(snmp::SnmpVersion version, std::uint64_t seed) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host* manager = &net.add_host("manager");
  sim::Host* target = &net.add_host("target");
  net.add_host_interface(*manager, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(*target, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.2"));
  net.connect(*manager, "eth0", *target, "eth0");

  snmp::ClientConfig config;
  config.timeout = milliseconds(100);
  config.retries = 0;
  config.version = version;
  snmp::SnmpClient client(sim, manager->udp(), config);
  snmp::SubtreeWalker walker(client, 4);

  Xoshiro256 rng(seed ^ static_cast<std::uint64_t>(version));
  const snmp::Oid root({1, 3, 6, 1, 2, 1, 2, 2});

  target->udp().bind(161, [&](const sim::Ipv4Packet& packet) {
    snmp::Message request;
    try {
      request = snmp::decode_message(packet.udp.payload);
    } catch (const snmp::BerError&) {
      return;
    } catch (const BufferUnderflow&) {
      return;
    }
    const snmp::Oid cursor = request.pdu.varbinds.empty()
                                 ? root
                                 : request.pdu.varbinds[0].oid;
    snmp::Message reply;
    reply.version = request.version;
    reply.community = request.community;
    reply.pdu.type = snmp::PduType::kGetResponse;
    reply.pdu.request_id = request.pdu.request_id;

    Bytes wire;
    switch (rng.uniform_int(0, 7)) {
      case 0: {  // well-formed continuation; sometimes exits the subtree
        snmp::Oid next = cursor;
        const std::size_t count = rng.uniform_int(1, 3);
        for (std::size_t i = 0; i < count; ++i) {
          next = next.child(static_cast<std::uint32_t>(rng.uniform_int(0, 5)));
          reply.pdu.varbinds.push_back(
              {next, snmp::SnmpValue(snmp::Counter32{7})});
        }
        if (rng.uniform_int(0, 2) == 0) {
          reply.pdu.varbinds.push_back(
              {snmp::Oid({9, 9}), snmp::SnmpValue(snmp::Null{})});
        }
        wire = snmp::encode_message(reply);
        break;
      }
      case 1: {  // truncated response: client must drop it, walk times out
        reply.pdu.varbinds.push_back(
            {cursor.child(1), snmp::SnmpValue(snmp::Counter32{7})});
        wire = snmp::encode_message(reply);
        wire.resize(rng.uniform_int(0, wire.size() - 1));
        break;
      }
      case 2: {  // single bit flip anywhere in a valid response
        reply.pdu.varbinds.push_back(
            {cursor.child(1), snmp::SnmpValue(snmp::Counter32{7})});
        wire = snmp::encode_message(reply);
        const std::size_t byte = rng.uniform_int(0, wire.size() - 1);
        wire[byte] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
        break;
      }
      case 3: {  // non-increasing OID: must end the walk, not loop forever
        reply.pdu.varbinds.push_back(
            {cursor, snmp::SnmpValue(snmp::Counter32{7})});
        wire = snmp::encode_message(reply);
        break;
      }
      case 4: {  // empty varbind list
        wire = snmp::encode_message(reply);
        break;
      }
      case 5: {  // pure garbage bytes
        wire.resize(rng.uniform_int(0, 48));
        for (auto& b : wire) b = static_cast<std::uint8_t>(rng.next());
        break;
      }
      case 6: {  // endOfMibView exception varbind
        reply.pdu.varbinds.push_back(
            {cursor.child(1),
             snmp::SnmpValue(snmp::VarBindException::kEndOfMibView)});
        wire = snmp::encode_message(reply);
        break;
      }
      default: {  // error PDU; for v1 noSuchName is the normal walk end
        reply.pdu.error_status = request.version == snmp::SnmpVersion::kV1
                                     ? snmp::ErrorStatus::kNoSuchName
                                     : snmp::ErrorStatus::kGenErr;
        reply.pdu.error_index = 1;
        wire = snmp::encode_message(reply);
        break;
      }
    }
    target->udp().send(packet.src, packet.udp.src_port, 161,
                       std::move(wire));
  });

  for (int i = 0; i < 40; ++i) {
    bool done = false;
    walker.walk(target->ip(), "public", root, [&](snmp::WalkResult result) {
      done = true;
      for (std::size_t j = 0; j < result.varbinds.size(); ++j) {
        EXPECT_TRUE(result.varbinds[j].oid.starts_with(root));
        if (j > 0) {
          EXPECT_LT(result.varbinds[j - 1].oid, result.varbinds[j].oid);
        }
      }
    });
    sim.run_until(sim.now() + seconds(2));
    ASSERT_TRUE(done) << "walk " << i << " hung (seed " << seed << ")";
  }
}

TEST_P(FuzzSeeds, WalkerSurvivesAdversarialBulkResponses) {
  run_adversarial_walks(snmp::SnmpVersion::kV2c, GetParam());
}

TEST_P(FuzzSeeds, WalkerSurvivesAdversarialGetNextResponses) {
  run_adversarial_walks(snmp::SnmpVersion::kV1, GetParam());
}

#if defined(NETQOS_FUZZ_LONG)
// Tier-2 build (netqos_soak_tests): a much larger seed sweep.
INSTANTIATE_TEST_SUITE_P(LongSeeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1000u, 1032u));
#else
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11u, 222u, 3333u, 44444u));
#endif

}  // namespace
}  // namespace netqos
