// Module dispatch properties:
//  - a module's output is a function of the sample stream alone —
//    registration order relative to other modules never changes it;
//  - a throwing module is isolated: the core keeps polling, the error
//    counter increments, and every other module's output is unaffected.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "../modules/fake_core.h"
#include "experiments/lirtss.h"
#include "monitor/modules/ewma_anomaly.h"
#include "monitor/modules/top_talkers.h"

namespace netqos::mon {
namespace {

/// Renders a module's observable output for equality comparison.
std::string snapshot(const Module& module) {
  std::ostringstream out;
  out << module.name() << " footprint=" << module.footprint_bytes() << "\n";
  for (const ModuleNote& note : module.notes()) {
    out << note.key << "=" << note.value << "\n";
  }
  return out.str();
}

/// One randomized sample stream, replayed identically to every host.
struct Stream {
  struct InterfaceEvent {
    InterfaceKey key;
    SimTime time;
    RateSample rate;
  };
  struct PathEvent {
    PathKey key;
    SimTime time;
    PathUsage usage;
  };
  std::vector<InterfaceEvent> interfaces;
  std::vector<PathEvent> paths;

  static Stream random(std::uint32_t seed) {
    std::mt19937 rng(seed);
    std::uniform_real_distribution<double> rate(0.0, 1'000'000.0);
    std::uniform_int_distribution<int> node(0, 4);
    Stream s;
    for (int i = 0; i < 200; ++i) {
      const SimTime t = from_seconds(2.0 * (i / 5 + 1));
      InterfaceEvent ev;
      ev.key = {"H" + std::to_string(node(rng)), "eth0"};
      ev.time = t;
      ev.rate.interval_seconds = 2.0;
      ev.rate.in_rate = rate(rng);
      ev.rate.out_rate = rate(rng);
      s.interfaces.push_back(ev);

      PathEvent pe;
      pe.key = {"H" + std::to_string(node(rng)), "N"};
      pe.time = t;
      pe.usage.complete = true;
      pe.usage.used_at_bottleneck = rate(rng);
      pe.usage.available = rate(rng);
      s.paths.push_back(pe);
    }
    return s;
  }

  void replay(ModuleHost& host) const {
    for (std::size_t i = 0; i < interfaces.size(); ++i) {
      host.dispatch_interface_sample(interfaces[i].key, interfaces[i].time,
                                     interfaces[i].rate);
      host.dispatch_path_sample(paths[i].key, paths[i].time,
                                paths[i].usage);
      if (i % 5 == 4) host.run_round(interfaces[i].time);
    }
    host.flush();
  }
};

class Fixture {
 public:
  FakeCore core;
  obs::MetricsRegistry metrics;
  ModuleHost host{core, metrics, "L"};
};

TEST(ModuleDispatchProperty, RegistrationOrderDoesNotChangeOutput) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const Stream stream = Stream::random(seed);

    std::vector<std::string> forward, reverse;
    {
      Fixture f;
      auto& anomaly =
          f.host.add(std::make_unique<EwmaAnomalyModule>());
      auto& talkers = f.host.add(std::make_unique<TopTalkersModule>());
      stream.replay(f.host);
      forward = {snapshot(anomaly), snapshot(talkers)};
    }
    {
      Fixture f;
      auto& talkers = f.host.add(std::make_unique<TopTalkersModule>());
      auto& anomaly =
          f.host.add(std::make_unique<EwmaAnomalyModule>());
      stream.replay(f.host);
      reverse = {snapshot(anomaly), snapshot(talkers)};
    }
    EXPECT_EQ(forward[0], reverse[0]) << "seed " << seed;
    EXPECT_EQ(forward[1], reverse[1]) << "seed " << seed;
  }
}

/// Throws on every delivery and round hook.
class FaultyModule final : public Module {
 public:
  FaultyModule() : Module("faulty") {}
  bool wants_interface_samples() const override { return true; }
  void on_interface_sample(const InterfaceKey&, SimTime,
                           const RateSample&) override {
    throw std::runtime_error("interface boom");
  }
  void on_path_sample(const PathKey&, SimTime, const PathUsage&) override {
    throw std::runtime_error("path boom");
  }
  void on_round_end(SimTime) override {
    throw std::runtime_error("round boom");
  }
  void flush() override { throw std::runtime_error("flush boom"); }
};

TEST(ModuleDispatchProperty, ThrowingModuleIsIsolated) {
  const Stream stream = Stream::random(42);

  std::string clean;
  {
    Fixture f;
    auto& talkers = f.host.add(std::make_unique<TopTalkersModule>());
    stream.replay(f.host);
    clean = snapshot(talkers);
  }

  Fixture f;
  f.host.add(std::make_unique<FaultyModule>());
  auto& talkers = f.host.add(std::make_unique<TopTalkersModule>());
  auto& anomaly = f.host.add(std::make_unique<EwmaAnomalyModule>());
  stream.replay(f.host);

  // The healthy modules saw the whole stream, bit for bit.
  EXPECT_EQ(snapshot(talkers), clean);
  EXPECT_GT(anomaly.notes().size(), 1u);

  // Every delivery the faulty module lost is on its error counter, and
  // only on its counter.
  const auto statuses = f.host.statuses();
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_EQ(statuses[0].name, "faulty");
  EXPECT_GT(statuses[0].errors, 0u);
  EXPECT_EQ(statuses[0].errors, f.host.total_errors());
  EXPECT_EQ(statuses[0].errors, statuses[0].samples + /*round+flush*/ 41u);
  EXPECT_EQ(statuses[1].errors, 0u);
  EXPECT_EQ(statuses[2].errors, 0u);
}

// End to end: a module throwing on every sample must not cost the core a
// single poll round or perturb the measured series.
TEST(ModuleDispatchProperty, CoreKeepsPollingPastAFaultyModule) {
  const auto profile = load::RateProfile::pulse(
      seconds(5), seconds(55), kilobytes_per_second(300));

  exp::LirtssTestbed clean_bed;
  clean_bed.watch("S1", "N1");
  clean_bed.add_load("L", "N1", profile);
  clean_bed.run_until(seconds(60));

  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  bed.monitor().add_module(std::make_unique<FaultyModule>());
  bed.add_load("L", "N1", profile);
  bed.run_until(seconds(60));

  EXPECT_EQ(bed.monitor().stats().rounds_completed,
            clean_bed.monitor().stats().rounds_completed);
  EXPECT_GT(bed.monitor().modules().total_errors(), 0u);
  // Identical simulations, identical measurements: the faulty module
  // could not perturb the pipeline around it.
  const auto& noisy = bed.monitor().used_series("S1", "N1").points();
  const auto& quiet = clean_bed.monitor().used_series("S1", "N1").points();
  ASSERT_EQ(noisy.size(), quiet.size());
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    EXPECT_EQ(noisy[i].time, quiet[i].time);
    EXPECT_EQ(noisy[i].value, quiet[i].value);
  }
}

}  // namespace
}  // namespace netqos::mon
