#include <gtest/gtest.h>

#include "netsim/background.h"
#include "netsim/simulator.h"
#include "netsim/network.h"
#include "netsim/services.h"
#include "spec/testbed.h"

namespace netqos::sim {
namespace {

TEST(NetworkBuilder, BuildsLirtssTestbed) {
  const auto specfile = spec::lirtss_testbed();
  Simulator sim;
  auto net = build_network(sim, specfile.topology);

  EXPECT_NE(net->find_host("L"), nullptr);
  EXPECT_NE(net->find_host("S6"), nullptr);
  EXPECT_NE(net->find_switch("sw0"), nullptr);
  EXPECT_NE(dynamic_cast<Hub*>(net->find_node("hub0")), nullptr);
  EXPECT_EQ(net->find_host("nothere"), nullptr);

  // Switch management is enabled because the spec says snmp on.
  EXPECT_NE(net->find_switch("sw0")->management(), nullptr);
  // ARP registry resolves hosts and the management address.
  EXPECT_TRUE(net->resolve(Ipv4Address::parse("10.0.0.1")).has_value());
  EXPECT_TRUE(net->resolve(Ipv4Address::parse("10.0.0.100")).has_value());
  EXPECT_FALSE(net->resolve(Ipv4Address::parse("10.0.0.99")).has_value());
}

TEST(NetworkBuilder, EndToEndTrafficAcrossTestbed) {
  const auto specfile = spec::lirtss_testbed();
  Simulator sim;
  auto net = build_network(sim, specfile.topology);

  Host* l = net->find_host("L");
  Host* n1 = net->find_host("N1");
  DiscardService discard(*n1);
  const std::uint16_t sport = l->udp().allocate_ephemeral_port();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(l->udp().send(n1->ip(), kDiscardPort, sport, {}, 1000));
  }
  sim.run_all();
  EXPECT_EQ(discard.datagrams(), 10u);
  EXPECT_EQ(discard.payload_bytes(), 10'000u);
}

TEST(NetworkBuilder, RejectsInvalidTopology) {
  topo::NetworkTopology bad;
  topo::NodeSpec host;
  host.name = "A";
  host.kind = topo::NodeKind::kHost;
  host.interfaces.push_back({"eth0", mbps(100), "10.0.0.1"});
  bad.add_node(host);
  bad.add_connection({{"A", "eth0"}, {"ghost", "p1"}});
  Simulator sim;
  EXPECT_THROW(build_network(sim, bad), std::invalid_argument);
}

TEST(NetworkBuilder, RejectsHostInterfaceWithoutIp) {
  topo::NetworkTopology topo;
  topo::NodeSpec host;
  host.name = "A";
  host.kind = topo::NodeKind::kHost;
  host.interfaces.push_back({"eth0", mbps(100), ""});
  topo.add_node(host);
  Simulator sim;
  EXPECT_THROW(build_network(sim, topo), std::invalid_argument);
}

TEST(NetworkBuilder, RejectsSnmpSwitchWithoutManagementIp) {
  topo::NetworkTopology topo;
  topo::NodeSpec sw;
  sw.name = "sw0";
  sw.kind = topo::NodeKind::kSwitch;
  sw.snmp_enabled = true;
  sw.default_speed = mbps(100);
  sw.interfaces.push_back({"p1", 0, ""});
  topo.add_node(sw);
  Simulator sim;
  EXPECT_THROW(build_network(sim, topo), std::invalid_argument);
}

TEST(NetworkBuilder, DuplicateIpRejected) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  Host& b = net.add_host("B");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  EXPECT_THROW(net.add_host_interface(b, "eth0", mbps(10),
                                      Ipv4Address::parse("10.0.0.1")),
               std::invalid_argument);
}

TEST(NetworkBuilder, DuplicateNodeNameRejected) {
  Simulator sim;
  Network net(sim);
  net.add_host("A");
  EXPECT_THROW(net.add_host("A"), std::invalid_argument);
}

TEST(Services, EchoServiceRoundTrips) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  Host& b = net.add_host("B");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(b, "eth0", mbps(10), Ipv4Address::parse("10.0.0.2"));
  net.connect(a, "eth0", b, "eth0");

  EchoService echo(b);
  int replies = 0;
  a.udp().bind(3000, [&](const Ipv4Packet& p) {
    ++replies;
    EXPECT_EQ(p.udp.payload_size(), 64u);
  });
  a.udp().send(b.ip(), kEchoPort, 3000, {}, 64);
  sim.run_all();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(echo.datagrams(), 1u);
}

TEST(Services, BackgroundTrafficApproximatesRate) {
  const auto specfile = spec::lirtss_testbed();
  Simulator sim;
  auto net = build_network(sim, specfile.topology);
  std::vector<Host*> hosts;
  std::vector<std::unique_ptr<DiscardService>> discards;
  for (const auto& node : specfile.topology.nodes()) {
    if (auto* h = net->find_host(node.name)) {
      hosts.push_back(h);
      discards.push_back(std::make_unique<DiscardService>(*h));
    }
  }
  BackgroundConfig config;
  config.mean_rate = 20'000.0;
  BackgroundTraffic bg(sim, hosts, config);
  bg.start();
  sim.run_until(seconds(100));
  bg.stop();
  const double rate =
      static_cast<double>(bg.payload_bytes_sent()) / 100.0;
  EXPECT_NEAR(rate, 20'000.0, 2'000.0);  // within 10%
}

TEST(Services, BackgroundTrafficIsDeterministic) {
  auto run_once = [] {
    const auto specfile = spec::lirtss_testbed();
    Simulator sim;
    auto net = build_network(sim, specfile.topology);
    std::vector<Host*> hosts;
    for (const auto& node : specfile.topology.nodes()) {
      if (auto* h = net->find_host(node.name)) hosts.push_back(h);
    }
    BackgroundTraffic bg(sim, hosts, {});
    bg.start();
    sim.run_until(seconds(10));
    return bg.datagrams_sent();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Services, BackgroundNeedsTwoHosts) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  EXPECT_THROW(BackgroundTraffic(sim, {&a}, {}), std::invalid_argument);
}

TEST(Services, DoubleBindDiscardThrows) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  DiscardService first(a);
  EXPECT_THROW(DiscardService second(a), std::logic_error);
}

}  // namespace
}  // namespace netqos::sim
