// High-rate small-packet bursts through the UDP stack — the traffic
// shape active probing adds to the wire (packet pairs and trains are
// dozens of minimum-size frames sent back to back).
//
// Two properties: the pooled hot path stays allocation-flat (every
// buffer after pool priming is recycled, no steady-state growth), and
// bursts never reorder — the link layer is a FIFO per interface, and
// estimator gap measurements are meaningless if frames can overtake
// each other.
#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/buffer_pool.h"
#include "netsim/network.h"

namespace netqos::sim {
namespace {

constexpr std::uint16_t kSinkPort = 7100;

std::uint32_t decode_seq(const Bytes& payload) {
  if (payload.size() < 4) return 0;
  return (static_cast<std::uint32_t>(payload[0]) << 24) |
         (static_cast<std::uint32_t>(payload[1]) << 16) |
         (static_cast<std::uint32_t>(payload[2]) << 8) |
         static_cast<std::uint32_t>(payload[3]);
}

Bytes encode_seq(BufferPool& pool, std::uint32_t seq) {
  Bytes payload = pool.acquire();
  payload.push_back(static_cast<std::uint8_t>(seq >> 24));
  payload.push_back(static_cast<std::uint8_t>(seq >> 16));
  payload.push_back(static_cast<std::uint8_t>(seq >> 8));
  payload.push_back(static_cast<std::uint8_t>(seq));
  return payload;
}

/// A <-> B across one switch; B records every sequence number it sees.
class BurstFixture : public ::testing::Test {
 protected:
  BurstFixture() : net(sim) {
    Switch& sw = net.add_switch("sw0");
    net.add_port(sw, "p1", mbps(100));
    net.add_port(sw, "p2", mbps(100));
    a = &net.add_host("A");
    b = &net.add_host("B");
    net.add_host_interface(*a, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*b, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.2"));
    net.connect(*a, "eth0", sw, "p1");
    net.connect(*b, "eth0", sw, "p2");
    b->udp().bind(kSinkPort, [this](const Ipv4Packet& packet) {
      received.push_back(decode_seq(packet.udp.payload));
    });
    // Prime the switch FDB so the bursts are unicast, not floods.
    b->udp().send(a->ip(), 1, 1, {}, 10);
    sim.run_all();
  }

  /// `bursts` bursts of `burst_size` minimum-size packets, one burst per
  /// millisecond, every packet within a burst sent back to back.
  void blast(std::uint32_t bursts, std::uint32_t burst_size) {
    std::uint32_t seq = 0;
    const SimTime base = sim.now() + kMillisecond;
    for (std::uint32_t burst = 0; burst < bursts; ++burst) {
      sim.schedule_at(base + burst * kMillisecond,
                      [this, burst_size, seq]() mutable {
        for (std::uint32_t i = 0; i < burst_size; ++i) {
          ASSERT_TRUE(a->udp().send(b->ip(), kSinkPort, 5000,
                                    encode_seq(sim.buffer_pool(), seq + i)));
        }
      });
      seq += burst_size;
    }
    sim.run_all();
  }

  Simulator sim;
  Network net;
  Host* a = nullptr;
  Host* b = nullptr;
  std::vector<std::uint32_t> received;
};

TEST_F(BurstFixture, BurstsArriveCompleteAndInOrder) {
  blast(/*bursts=*/200, /*burst_size=*/40);
  ASSERT_EQ(received.size(), 200u * 40u);
  for (std::uint32_t i = 0; i < received.size(); ++i) {
    ASSERT_EQ(received[i], i) << "reordered at position " << i;
  }
}

TEST_F(BurstFixture, SteadyStateBurstsAreAllocationFlat) {
  // Warm the pool with one burst, then measure fresh allocations
  // (acquires the free list could not serve) across a long steady state.
  blast(/*bursts=*/1, /*burst_size=*/40);
  const BufferPool::Stats warm = sim.buffer_pool().stats();
  const std::uint64_t warm_fresh = warm.acquires - warm.reuses;

  std::uint32_t seq = 1000;
  for (std::uint32_t burst = 0; burst < 500; ++burst) {
    sim.schedule_after(kMillisecond, [this, &seq] {
      for (std::uint32_t i = 0; i < 40; ++i) {
        a->udp().send(b->ip(), kSinkPort, 5000,
                      encode_seq(sim.buffer_pool(), seq++));
      }
    });
    sim.run_all();
  }

  const BufferPool::Stats steady = sim.buffer_pool().stats();
  EXPECT_EQ(steady.acquires - steady.reuses, warm_fresh)
      << "steady-state bursts allocated fresh buffers instead of reusing "
         "pooled capacity";
  // The FDB-priming send carries an empty payload whose zero-capacity
  // buffer is discarded on return; the bursts themselves add none.
  EXPECT_EQ(steady.discards, warm.discards);
  EXPECT_EQ(received.size(), 40u + 500u * 40u);
}

}  // namespace
}  // namespace netqos::sim
