#include "netsim/simulator.h"

#include <gtest/gtest.h>

namespace netqos::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(seconds(3), [&] { order.push_back(3); });
  sim.schedule_at(seconds(1), [&] { order.push_back(1); });
  sim.schedule_at(seconds(2), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(seconds(1), [&, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilStopsAtLimitInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(seconds(1), [&] { ++fired; });
  sim.schedule_at(seconds(2), [&] { ++fired; });
  sim.schedule_at(seconds(3), [&] { ++fired; });
  sim.run_until(seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), seconds(2));
  sim.run_until(seconds(5));
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), seconds(5));  // clock advances to the limit
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(seconds(5), [&] {
    sim.schedule_after(seconds(2), [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, seconds(7));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(seconds(5), [] {});
  sim.run_all();
  EXPECT_THROW(sim.schedule_at(seconds(1), [] {}), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(seconds(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(seconds(1), [] {});
  sim.run_all();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.schedule_after(milliseconds(1), chain);
  };
  sim.schedule_at(0, chain);
  sim.run_all();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), milliseconds(99));
}

TEST(Simulator, RunUntilLeavesFutureEventsPending) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(seconds(10), [&] { ran = true; });
  sim.run_until(seconds(5));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, ExecutedCountTracks) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(seconds(i + 1), [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 5u);
}

}  // namespace
}  // namespace netqos::sim
