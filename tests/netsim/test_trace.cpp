#include "netsim/trace.h"

#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/services.h"
#include "netsim/simulator.h"

namespace netqos::sim {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  TraceFixture() : net(sim), tracer(sim) {
    a = &net.add_host("A");
    b = &net.add_host("B");
    net.add_host_interface(*a, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*b, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.2"));
    link = &net.connect(*a, "eth0", *b, "eth0");
    discard = std::make_unique<DiscardService>(*b);
  }

  void send(std::uint16_t dst_port, std::size_t payload) {
    const auto sport = a->udp().allocate_ephemeral_port();
    a->udp().send(b->ip(), dst_port, sport, {}, payload);
  }

  Simulator sim;
  Network net;
  Host *a = nullptr, *b = nullptr;
  Link* link = nullptr;
  std::unique_ptr<DiscardService> discard;
  FrameTracer tracer;
};

TEST_F(TraceFixture, RecordsCarriedFrames) {
  tracer.attach(*link, "a-b");
  send(kDiscardPort, 100);
  sim.run_all();
  ASSERT_EQ(tracer.records().size(), 1u);
  const TraceRecord& rec = tracer.records()[0];
  EXPECT_EQ(rec.link, "a-b");
  EXPECT_EQ(rec.from, "A.eth0");
  EXPECT_EQ(rec.src_ip, a->ip());
  EXPECT_EQ(rec.dst_ip, b->ip());
  EXPECT_EQ(rec.dst_port, kDiscardPort);
  EXPECT_EQ(rec.wire_bytes, 146u);
  EXPECT_EQ(tracer.total_seen(), 1u);
}

TEST_F(TraceFixture, FilterSelectsPort) {
  tracer.attach(*link, "a-b");
  tracer.set_filter(FrameTracer::port_filter(9));
  b->udp().bind(7777, [](const Ipv4Packet&) {});
  send(kDiscardPort, 10);
  send(7777, 10);
  sim.run_all();
  EXPECT_EQ(tracer.total_seen(), 2u);
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].dst_port, 9);
}

TEST_F(TraceFixture, RingBufferEvictsOldest) {
  FrameTracer small(sim, 3);
  small.attach(*link, "a-b");
  for (int i = 0; i < 5; ++i) send(kDiscardPort, 10 + i);
  sim.run_all();
  EXPECT_EQ(small.records().size(), 3u);
  EXPECT_EQ(small.evicted(), 2u);
  EXPECT_EQ(small.total_seen(), 5u);
}

TEST_F(TraceFixture, DroppedFramesNotTraced) {
  tracer.attach(*link, "a-b");
  link->set_up(false);
  send(kDiscardPort, 10);
  sim.run_all();
  EXPECT_EQ(tracer.total_seen(), 0u);
}

TEST_F(TraceFixture, FormatIsReadable) {
  tracer.attach(*link, "a-b");
  send(kDiscardPort, 100);
  sim.run_all();
  const std::string line = FrameTracer::format(tracer.records()[0]);
  EXPECT_NE(line.find("[a-b]"), std::string::npos);
  EXPECT_NE(line.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(line.find("> 10.0.0.2:9"), std::string::npos);
  EXPECT_NE(line.find("(146B)"), std::string::npos);
}

TEST_F(TraceFixture, ClearEmptiesBuffer) {
  tracer.attach(*link, "a-b");
  send(kDiscardPort, 10);
  sim.run_all();
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.total_seen(), 1u);  // counters survive
}

}  // namespace
}  // namespace netqos::sim
