// Multi-switch topologies: learning and forwarding across a switch chain.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/services.h"
#include "netsim/simulator.h"

namespace netqos::sim {
namespace {

/// A - sw1 - sw2 - sw3 - B, with C on sw2.
class ChainFixture : public ::testing::Test {
 protected:
  ChainFixture() : net(sim) {
    for (int i = 1; i <= 3; ++i) {
      Switch& sw = net.add_switch("sw" + std::to_string(i));
      switches.push_back(&sw);
      for (int p = 1; p <= 4; ++p) {
        net.add_port(sw, "p" + std::to_string(p), mbps(100));
      }
    }
    net.connect(*switches[0], "p2", *switches[1], "p1");
    net.connect(*switches[1], "p2", *switches[2], "p1");

    a = &net.add_host("A");
    b = &net.add_host("B");
    c = &net.add_host("C");
    net.add_host_interface(*a, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*b, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.2"));
    net.add_host_interface(*c, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.3"));
    net.connect(*a, "eth0", *switches[0], "p1");
    net.connect(*b, "eth0", *switches[2], "p2");
    net.connect(*c, "eth0", *switches[1], "p3");
    for (auto* h : {a, b, c}) {
      discards.push_back(std::make_unique<DiscardService>(*h));
    }
  }

  Simulator sim;
  Network net;
  std::vector<Switch*> switches;
  Host *a = nullptr, *b = nullptr, *c = nullptr;
  std::vector<std::unique_ptr<DiscardService>> discards;
};

TEST_F(ChainFixture, EndToEndAcrossThreeSwitches) {
  const auto sport = a->udp().allocate_ephemeral_port();
  ASSERT_TRUE(a->udp().send(b->ip(), kDiscardPort, sport, {}, 500));
  sim.run_all();
  EXPECT_EQ(discards[1]->datagrams(), 1u);
  // Every switch learned A's MAC along the way.
  const MacAddress mac_a = a->find_interface("eth0")->mac();
  for (auto* sw : switches) {
    EXPECT_NE(sw->learned_port(mac_a), nullptr) << sw->name();
  }
}

TEST_F(ChainFixture, ReturnTrafficIsUnicastAfterLearning) {
  const auto sport = a->udp().allocate_ephemeral_port();
  a->udp().send(b->ip(), kDiscardPort, sport, {}, 100);
  sim.run_all();
  // B replies: all switches know A now, so zero new floods.
  const auto floods_before = switches[0]->stats().frames_flooded +
                             switches[1]->stats().frames_flooded +
                             switches[2]->stats().frames_flooded;
  const auto sport_b = b->udp().allocate_ephemeral_port();
  b->udp().send(a->ip(), kDiscardPort, sport_b, {}, 100);
  sim.run_all();
  const auto floods_after = switches[0]->stats().frames_flooded +
                            switches[1]->stats().frames_flooded +
                            switches[2]->stats().frames_flooded;
  EXPECT_EQ(floods_after, floods_before);
  EXPECT_EQ(discards[0]->datagrams(), 1u);
}

TEST_F(ChainFixture, MidChainHostReachable) {
  const auto sport = a->udp().allocate_ephemeral_port();
  a->udp().send(c->ip(), kDiscardPort, sport, {}, 100);
  sim.run_all();
  EXPECT_EQ(discards[2]->datagrams(), 1u);
  // sw3 never saw the frame destined to C after learning...
  // (first frame floods everywhere, so just assert delivery).
}

TEST_F(ChainFixture, CutMiddleLinkPartitionsNetwork) {
  const auto sport = a->udp().allocate_ephemeral_port();
  a->udp().send(b->ip(), kDiscardPort, sport, {}, 100);
  sim.run_all();
  ASSERT_EQ(discards[1]->datagrams(), 1u);

  switches[1]->find_interface("p2")->link()->set_up(false);
  a->udp().send(b->ip(), kDiscardPort, sport, {}, 100);
  sim.run_all();
  EXPECT_EQ(discards[1]->datagrams(), 1u);  // no new delivery
  // But C (before the cut) is still reachable.
  a->udp().send(c->ip(), kDiscardPort, sport, {}, 100);
  sim.run_all();
  EXPECT_EQ(discards[2]->datagrams(), 1u);
}

TEST_F(ChainFixture, SerializationAccumulatesPerHop) {
  // 4 hops (A->sw1->sw2->sw3->B) at 100 Mbps, 1518-byte frame:
  // ~121.4 us per hop + propagation.
  SimTime arrival = -1;
  b->udp().unbind(kDiscardPort);
  b->udp().bind(kDiscardPort,
                [&](const Ipv4Packet&) { arrival = sim.now(); });
  const auto sport = a->udp().allocate_ephemeral_port();
  a->udp().send(b->ip(), kDiscardPort, sport, {}, 1472);
  sim.run_all();
  const SimTime per_hop = transmission_delay(1518, mbps(100)) + 500;
  EXPECT_EQ(arrival, 4 * per_hop);
}

}  // namespace
}  // namespace netqos::sim
