// Switch learning/forwarding and hub repeating semantics — the behaviours
// the paper's §3.3 bandwidth rules depend on.
#include "netsim/simulator.h"
#include <gtest/gtest.h>

#include "netsim/network.h"

namespace netqos::sim {
namespace {

/// Three hosts on a switch: A(p1), B(p2), C(p3).
class SwitchFixture : public ::testing::Test {
 protected:
  SwitchFixture() : net(sim) {
    sw = &net.add_switch("sw0");
    for (int i = 1; i <= 3; ++i) {
      net.add_port(*sw, "p" + std::to_string(i), mbps(100));
    }
    const char* names[] = {"A", "B", "C"};
    for (int i = 0; i < 3; ++i) {
      Host& h = net.add_host(names[i]);
      hosts[i] = &h;
      net.add_host_interface(
          h, "eth0", mbps(100),
          Ipv4Address::parse("10.0.0." + std::to_string(i + 1)));
      net.connect(h, "eth0", *sw, "p" + std::to_string(i + 1));
    }
    for (auto* h : hosts) {
      h->udp().bind(9, [](const Ipv4Packet&) {});
    }
  }

  Simulator sim;
  Network net;
  Switch* sw = nullptr;
  Host* hosts[3] = {};
};

TEST_F(SwitchFixture, FirstFrameFloodsUnknownDestination) {
  hosts[0]->udp().send(hosts[1]->ip(), 9, 1000, {}, 100);
  sim.run_all();
  EXPECT_EQ(sw->stats().frames_flooded, 1u);
  // C's NIC saw the flood on the wire but filtered it.
  EXPECT_GT(hosts[2]->find_interface("eth0")->filtered_octets(), 0u);
  EXPECT_EQ(hosts[2]->find_interface("eth0")->counters().if_in_octets, 0u);
}

TEST_F(SwitchFixture, LearnedDestinationIsUnicastForwarded) {
  // B speaks first so the switch learns B's port.
  hosts[1]->udp().send(hosts[0]->ip(), 9, 1000, {}, 100);
  sim.run_all();
  const std::uint64_t c_filtered_before =
      hosts[2]->find_interface("eth0")->filtered_octets();

  hosts[0]->udp().send(hosts[1]->ip(), 9, 1000, {}, 100);
  sim.run_all();
  EXPECT_GE(sw->stats().frames_forwarded, 1u);
  // C saw nothing new: switch isolation (paper §3.3 / Figure 6).
  EXPECT_EQ(hosts[2]->find_interface("eth0")->filtered_octets(),
            c_filtered_before);
}

TEST_F(SwitchFixture, FdbLearnsSourcePorts) {
  hosts[0]->udp().send(hosts[1]->ip(), 9, 1000, {}, 10);
  sim.run_all();
  const MacAddress mac_a = hosts[0]->find_interface("eth0")->mac();
  Nic* port = sw->learned_port(mac_a);
  ASSERT_NE(port, nullptr);
  EXPECT_EQ(port->name(), "p1");
}

TEST_F(SwitchFixture, SwitchPortCountersSeeForwardedTraffic) {
  hosts[1]->udp().send(hosts[0]->ip(), 9, 1000, {}, 10);  // learn B
  sim.run_all();
  hosts[0]->udp().send(hosts[1]->ip(), 9, 1000, {}, 1000);
  sim.run_all();
  const Nic* p2 = sw->find_interface("p2");
  // p2 carried the frame out towards B.
  EXPECT_GT(p2->counters().if_out_octets, 1000u);
}

TEST_F(SwitchFixture, ManagementPlaneAnswersDirectly) {
  net.enable_switch_management(*sw, Ipv4Address::parse("10.0.0.100"));
  int received = 0;
  sw->management()->bind(7777, [&](const Ipv4Packet&) { ++received; });
  hosts[0]->udp().send(Ipv4Address::parse("10.0.0.100"), 7777, 1000, {}, 10);
  sim.run_all();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(sw->stats().frames_to_management, 1u);
}

TEST_F(SwitchFixture, ManagementRepliesReachRequester) {
  net.enable_switch_management(*sw, Ipv4Address::parse("10.0.0.100"));
  sw->management()->bind(7777, [&](const Ipv4Packet& p) {
    sw->management()->send(p.src, p.udp.src_port, 7777, {}, 5);
  });
  int replies = 0;
  hosts[0]->udp().bind(2000, [&](const Ipv4Packet&) { ++replies; });
  hosts[0]->udp().send(Ipv4Address::parse("10.0.0.100"), 7777, 2000, {}, 10);
  sim.run_all();
  EXPECT_EQ(replies, 1);
}

/// A and B on a hub; the hub uplinks to a switch with C behind it.
class HubFixture : public ::testing::Test {
 protected:
  HubFixture() : net(sim) {
    hub = &net.add_hub("hub0");
    sw = &net.add_switch("sw0");
    for (int i = 1; i <= 3; ++i) {
      net.add_port(*hub, "h" + std::to_string(i), mbps(10));
    }
    net.add_port(*sw, "p1", mbps(10));
    net.add_port(*sw, "p2", mbps(100));
    net.connect(*hub, "h1", *sw, "p1");

    a = &net.add_host("A");
    b = &net.add_host("B");
    c = &net.add_host("C");
    net.add_host_interface(*a, "eth0", mbps(10),
                           Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*b, "eth0", mbps(10),
                           Ipv4Address::parse("10.0.0.2"));
    net.add_host_interface(*c, "eth0", mbps(100),
                           Ipv4Address::parse("10.0.0.3"));
    net.connect(*a, "eth0", *hub, "h2");
    net.connect(*b, "eth0", *hub, "h3");
    net.connect(*c, "eth0", *sw, "p2");
    for (auto* h : {a, b, c}) h->udp().bind(9, [](const Ipv4Packet&) {});
  }

  Simulator sim;
  Network net;
  Hub* hub = nullptr;
  Switch* sw = nullptr;
  Host *a = nullptr, *b = nullptr, *c = nullptr;
};

TEST_F(HubFixture, HubRepeatsToEveryOtherPort) {
  // C -> A crosses the switch into the hub; the hub repeats to B too.
  c->udp().send(a->ip(), 9, 1000, {}, 500);
  sim.run_all();
  EXPECT_GT(a->find_interface("eth0")->counters().if_in_octets, 500u);
  // B's NIC saw it on the wire but filtered (not addressed to B).
  EXPECT_GT(b->find_interface("eth0")->filtered_octets(), 500u);
  EXPECT_EQ(b->find_interface("eth0")->counters().if_in_octets, 0u);
}

TEST_F(HubFixture, HubTrafficDoesNotEchoBackToSender) {
  a->udp().send(b->ip(), 9, 1000, {}, 100);
  sim.run_all();
  // A must not receive its own frame back (hub skips the ingress port).
  EXPECT_EQ(a->find_interface("eth0")->counters().if_in_octets, 0u);
  EXPECT_EQ(a->find_interface("eth0")->filtered_octets(), 0u);
}

TEST_F(HubFixture, IntraHubTrafficStaysOffSwitchHosts) {
  // Switch sees the frame on its hub port, learns, but C should receive
  // nothing once MACs are learned. First frame floods (unknown dst), so
  // prime the FDB with a reply from B.
  a->udp().send(b->ip(), 9, 1000, {}, 10);
  sim.run_all();
  b->udp().send(a->ip(), 9, 1000, {}, 10);
  sim.run_all();
  const std::uint64_t c_before =
      c->find_interface("eth0")->filtered_octets() +
      c->find_interface("eth0")->counters().if_in_octets;

  a->udp().send(b->ip(), 9, 1000, {}, 400);
  sim.run_all();
  const std::uint64_t c_after =
      c->find_interface("eth0")->filtered_octets() +
      c->find_interface("eth0")->counters().if_in_octets;
  // The switch learned B lives behind its hub port, so it does not
  // forward the frame to C's port.
  EXPECT_EQ(c_after, c_before);
}

TEST_F(HubFixture, SwitchUplinkPortSeesAllHubBoundTraffic) {
  c->udp().send(a->ip(), 9, 1000, {}, 300);
  c->udp().send(b->ip(), 9, 1000, {}, 300);
  sim.run_all();
  const Nic* p1 = sw->find_interface("p1");
  // Both frames crossed the uplink.
  EXPECT_GT(p1->counters().if_out_octets, 600u);
}

}  // namespace
}  // namespace netqos::sim
