#include "netsim/address.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace netqos::sim {
namespace {

TEST(MacAddress, FromIdIsLocallyAdministeredUnicast) {
  const MacAddress mac = MacAddress::from_id(0x01020304);
  EXPECT_EQ(mac.octets()[0], 0x02);  // U/L bit set, multicast bit clear
  EXPECT_EQ(mac.octets()[2], 0x01);
  EXPECT_EQ(mac.octets()[5], 0x04);
}

TEST(MacAddress, FromIdIsInjectiveOnSmallIds) {
  std::unordered_set<MacAddress> seen;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(MacAddress::from_id(i)).second);
  }
}

TEST(MacAddress, BroadcastDetected) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::from_id(1).is_broadcast());
}

TEST(MacAddress, ToStringFormat) {
  const MacAddress mac({0xde, 0xad, 0xbe, 0xef, 0x00, 0x01});
  EXPECT_EQ(mac.to_string(), "de:ad:be:ef:00:01");
}

TEST(MacAddress, Comparable) {
  EXPECT_EQ(MacAddress::from_id(5), MacAddress::from_id(5));
  EXPECT_NE(MacAddress::from_id(5), MacAddress::from_id(6));
  EXPECT_LT(MacAddress::from_id(5), MacAddress::from_id(6));
}

TEST(Ipv4Address, ParseValid) {
  const Ipv4Address a = Ipv4Address::parse("10.0.0.1");
  EXPECT_EQ(a.value(), 0x0a000001u);
  EXPECT_EQ(a.to_string(), "10.0.0.1");
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0").value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255").value(), 0xffffffffu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Address::parse(""), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("10.0.0"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("10.0.0.256"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("10.0.0.1.2"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("10.0.0.1x"), std::invalid_argument);
}

TEST(Ipv4Address, ConstructorFromOctets) {
  const Ipv4Address a(192, 168, 1, 10);
  EXPECT_EQ(a.to_string(), "192.168.1.10");
}

TEST(Ipv4Address, UnspecifiedDetected) {
  EXPECT_TRUE(Ipv4Address().is_unspecified());
  EXPECT_FALSE(Ipv4Address::parse("10.0.0.1").is_unspecified());
}

TEST(Ipv4Address, Hashable) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address::parse("10.0.0.1"));
  set.insert(Ipv4Address::parse("10.0.0.1"));
  set.insert(Ipv4Address::parse("10.0.0.2"));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace netqos::sim
