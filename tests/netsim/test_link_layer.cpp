// NIC + link level behaviour: serialization delay, counters, MAC
// filtering, queue overflow.
#include <gtest/gtest.h>

#include "netsim/host.h"
#include "netsim/link.h"
#include "netsim/network.h"
#include "netsim/packet.h"
#include "netsim/simulator.h"

namespace netqos::sim {
namespace {

TEST(Packet, WireSizesIncludeAllHeaders) {
  EthernetFrame frame;
  frame.ip.udp.padding = 1472;
  // 1472 + 8 (UDP) + 20 (IP) + 14 + 4 (Eth) = 1518.
  EXPECT_EQ(frame.wire_size(), 1518u);
}

TEST(Packet, MinimumFrameSizeEnforced) {
  EthernetFrame frame;  // empty payload: 18 + 28 = 46 < 64
  EXPECT_EQ(frame.wire_size(), kMinEthernetFrameBytes);
}

TEST(Packet, PayloadPlusPaddingCounted) {
  UdpDatagram dgram;
  dgram.payload = {1, 2, 3};
  dgram.padding = 100;
  EXPECT_EQ(dgram.payload_size(), 103u);
  EXPECT_EQ(dgram.wire_size(), 111u);
}

TEST(Packet, MaxUdpPayloadMatchesMtu) {
  EXPECT_EQ(kMaxUdpPayloadBytes, 1472u);
  Ipv4Packet packet;
  packet.udp.padding = kMaxUdpPayloadBytes;
  EXPECT_EQ(packet.wire_size(), kIpMtuBytes);
}

/// Two hosts on a direct cable.
class TwoHostFixture : public ::testing::Test {
 protected:
  TwoHostFixture() : net(sim) {
    a = &net.add_host("A");
    b = &net.add_host("B");
    net.add_host_interface(*a, "eth0", mbps(10),
                           Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*b, "eth0", mbps(10),
                           Ipv4Address::parse("10.0.0.2"));
    net.connect(*a, "eth0", *b, "eth0");
  }

  Simulator sim;
  Network net;
  Host* a = nullptr;
  Host* b = nullptr;
};

TEST_F(TwoHostFixture, DatagramArrivesAndCountersMatch) {
  int received = 0;
  b->udp().bind(1234, [&](const Ipv4Packet& p) {
    ++received;
    EXPECT_EQ(p.src, Ipv4Address::parse("10.0.0.1"));
    EXPECT_EQ(p.udp.payload_size(), 100u);
  });
  ASSERT_TRUE(a->udp().send(b->ip(), 1234, 5555, {}, 100));
  sim.run_until(seconds(1));
  EXPECT_EQ(received, 1);

  const Nic* na = a->find_interface("eth0");
  const Nic* nb = b->find_interface("eth0");
  // 100 payload + 8 + 20 + 18 = 146 octets on the wire.
  EXPECT_EQ(na->counters().if_out_octets, 146u);
  EXPECT_EQ(na->counters().if_out_ucast_pkts, 1u);
  EXPECT_EQ(nb->counters().if_in_octets, 146u);
  EXPECT_EQ(nb->counters().if_in_ucast_pkts, 1u);
}

TEST_F(TwoHostFixture, SerializationDelayIsExact) {
  SimTime arrival = -1;
  b->udp().bind(1234, [&](const Ipv4Packet&) { arrival = sim.now(); });
  a->udp().send(b->ip(), 1234, 5555, {}, 1472);
  sim.run_all();
  // 1518 bytes at 10 Mbps = 1214.4 us serialization + 500 ns propagation.
  const SimTime expected = transmission_delay(1518, mbps(10)) + 500;
  EXPECT_EQ(arrival, expected);
}

TEST_F(TwoHostFixture, BackToBackFramesQueue) {
  std::vector<SimTime> arrivals;
  b->udp().bind(1234, [&](const Ipv4Packet&) {
    arrivals.push_back(sim.now());
  });
  a->udp().send(b->ip(), 1234, 5555, {}, 1472);
  a->udp().send(b->ip(), 1234, 5555, {}, 1472);
  sim.run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame serializes after the first: exactly one frame time apart.
  EXPECT_EQ(arrivals[1] - arrivals[0], transmission_delay(1518, mbps(10)));
}

TEST_F(TwoHostFixture, SendToUnknownAddressFails) {
  EXPECT_FALSE(
      a->udp().send(Ipv4Address::parse("10.9.9.9"), 1, 2, {}, 10));
  EXPECT_EQ(a->udp().stats().send_failures, 1u);
}

TEST_F(TwoHostFixture, UnboundPortCountsDrop) {
  a->udp().send(b->ip(), 4242, 5555, {}, 10);
  sim.run_all();
  EXPECT_EQ(b->udp().stats().no_handler_drops, 1u);
}

TEST_F(TwoHostFixture, LoopbackDeliversWithoutWireTraffic) {
  int received = 0;
  a->udp().bind(99, [&](const Ipv4Packet&) { ++received; });
  ASSERT_TRUE(a->udp().send(a->ip(), 99, 5555, {}, 10));
  sim.run_all();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(a->find_interface("eth0")->counters().if_out_octets, 0u);
}

TEST_F(TwoHostFixture, QueueOverflowDropsTail) {
  Nic* na = a->find_interface("eth0");
  na->set_queue_limit(4);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    ok += a->udp().send(b->ip(), 1, 2, {}, 1000);
  }
  // One frame transmitting + 4 queued = 5 accepted.
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(na->counters().if_out_discards, 5u);
}

TEST_F(TwoHostFixture, EphemeralPortsSkipBoundPorts) {
  const std::uint16_t p1 = a->udp().allocate_ephemeral_port();
  a->udp().bind(p1, [](const Ipv4Packet&) {});
  const std::uint16_t p2 = a->udp().allocate_ephemeral_port();
  EXPECT_NE(p1, p2);
  EXPECT_GE(p1, 49152);
  EXPECT_GE(p2, 49152);
}

TEST(LinkRules, DoubleConnectThrows) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  Host& b = net.add_host("B");
  Host& c = net.add_host("C");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(b, "eth0", mbps(10), Ipv4Address::parse("10.0.0.2"));
  net.add_host_interface(c, "eth0", mbps(10), Ipv4Address::parse("10.0.0.3"));
  net.connect(a, "eth0", b, "eth0");
  EXPECT_THROW(net.connect(a, "eth0", c, "eth0"), std::invalid_argument);
}

TEST(LinkRules, UnknownInterfaceThrows) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  Host& b = net.add_host("B");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(b, "eth0", mbps(10), Ipv4Address::parse("10.0.0.2"));
  EXPECT_THROW(net.connect(a, "nope", b, "eth0"), std::invalid_argument);
}

TEST(NicFiltering, NonPromiscuousDropsForeignFramesUncounted) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  Host& b = net.add_host("B");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(b, "eth0", mbps(10), Ipv4Address::parse("10.0.0.2"));
  net.connect(a, "eth0", b, "eth0");

  // Hand-craft a frame addressed to a MAC that is NOT B's.
  EthernetFrame frame;
  frame.src = a.find_interface("eth0")->mac();
  frame.dst = MacAddress::from_id(0xdead);
  frame.ip.src = a.ip();
  frame.ip.dst = Ipv4Address::parse("10.0.0.9");
  frame.ip.udp.padding = 100;
  a.find_interface("eth0")->transmit(make_frame(frame));
  sim.run_all();

  const Nic* nb = b.find_interface("eth0");
  EXPECT_EQ(nb->counters().if_in_octets, 0u);  // hardware filter
  EXPECT_GT(nb->filtered_octets(), 0u);        // but it crossed the wire
}

TEST(NicFiltering, BroadcastAccepted) {
  Simulator sim;
  Network net(sim);
  Host& a = net.add_host("A");
  Host& b = net.add_host("B");
  net.add_host_interface(a, "eth0", mbps(10), Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(b, "eth0", mbps(10), Ipv4Address::parse("10.0.0.2"));
  net.connect(a, "eth0", b, "eth0");

  EthernetFrame frame;
  frame.src = a.find_interface("eth0")->mac();
  frame.dst = MacAddress::broadcast();
  frame.ip.src = a.ip();
  frame.ip.dst = b.ip();
  frame.ip.udp.padding = 50;
  a.find_interface("eth0")->transmit(make_frame(frame));
  sim.run_all();
  EXPECT_GT(b.find_interface("eth0")->counters().if_in_octets, 0u);
}

TEST(Counters, Counter32WrapsAt32Bits) {
  InterfaceCounters counters;
  counters.if_in_octets = 0xffffff00u;
  counters.count_in(0x200);
  EXPECT_EQ(counters.if_in_octets, 0x100u);  // wrapped
  EXPECT_EQ(counters.if_in_ucast_pkts, 1u);
}

}  // namespace
}  // namespace netqos::sim
