// Tier-2 soak: two simulated hours on the Figure 3 testbed.
//
// Everything the scheduler PR promises has to hold over a long horizon,
// not just in 60-second windows: Counter32 wraps (the ~90-minute horizon
// at sustained 800 KB/s), periodic SNMP-daemon flaps with quarantine +
// §4.1 switch-port fallback + recovery, a mid-run physical link failure
// with trap-driven re-probe, and the staleness invariant — a complete
// report is never flagged fresh while its oldest sample exceeds the
// bound.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/failure.h"
#include "netsim/link.h"
#include "snmp/deploy.h"

namespace netqos::mon {
namespace {

TEST(SoakLongRun, TwoSimulatedHoursOfWrapsFlapsAndFailures) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "S2").watch("L", "S1");
  FailureDetector detector(bed.simulator(), bed.topology(), bed.host("L"));
  bed.monitor().set_failure_detector(&detector);

  // Sustained load through L <-> S1: ~5.8 GB over the run, enough to
  // wrap the 2^32-octet Counter32 horizon at least once.
  bed.add_load("L", "S1",
               load::RateProfile::pulse(seconds(10), seconds(7200),
                                        kilobytes_per_second(800)));

  std::size_t samples = 0;
  std::size_t stale_reports = 0;
  std::size_t fresh_violations = 0;
  const SimDuration bound = bed.monitor().effective_stale_after();
  bed.monitor().add_sample_callback(
      [&](const PathKey&, SimTime, const PathUsage& usage) {
        ++samples;
        if (usage.freshness == Freshness::kStale) ++stale_reports;
        if (usage.freshness == Freshness::kFresh &&
            usage.max_sample_age > bound) {
          ++fresh_violations;
        }
      });

  snmp::SnmpAgent& s2 = *snmp::find_agent(bed.agents(), "S2")->agent;
  bool saw_quarantine = false;
  bool saw_fallback = false;

  // Daemon flap windows [start, start+300) roughly every 20 minutes. The
  // 3600 s slot carries a physical link failure instead: S2's uplink
  // dies for two minutes and the linkUp trap re-probes on restore.
  for (const double start : {1200.0, 2400.0, 4800.0, 6000.0}) {
    bed.run_until(from_seconds(start));
    s2.set_responding(false);
    bed.run_until(from_seconds(start + 250));
    saw_quarantine =
        saw_quarantine || bed.monitor().scheduler().find("S2")->health ==
                              AgentHealth::kQuarantined;
    for (const auto& usage :
         bed.monitor().current_usage("S1", "S2").connections) {
      saw_fallback = saw_fallback || usage.via_switch;
    }
    s2.set_responding(true);
    bed.run_until(from_seconds(start + 300));
    if (start == 2400.0) {
      bed.run_until(seconds(3600));
      sim::Link* link = bed.host("S2").find_interface("hme0")->link();
      link->set_up(false);
      bed.run_until(seconds(3720));
      link->set_up(true);
    }
  }
  bed.run_until(seconds(7200));

  // The one invariant that must never break, on any of the thousands of
  // reports: old data is never presented as fresh.
  EXPECT_EQ(fresh_violations, 0u);
  EXPECT_GT(samples, 4000u);
  // Flap windows produce honestly-stale reports before quarantine flips
  // the measure point.
  EXPECT_GT(stale_reports, 0u);

  // Counter32 wrapped and §3.1 modular differencing survived it.
  const obs::Counter* wraps = bed.monitor().metrics().find_counter(
      "netqos_statsdb_counter_wraps_total");
  ASSERT_NE(wraps, nullptr);
  EXPECT_GT(wraps->value(), 0u);

  // Every flap quarantined S2 and engaged the switch-port fallback, and
  // the link failure added a fifth quarantine entry.
  EXPECT_TRUE(saw_quarantine);
  EXPECT_TRUE(saw_fallback);
  EXPECT_GE(bed.monitor().scheduler().find("S2")->quarantines, 5u);
  EXPECT_GE(bed.monitor().stats().quarantine_transitions, 5u);
  EXPECT_GT(bed.monitor().stats().polls_skipped, 0u);

  // The physical failure was reported via traps.
  bool saw_down_event = false;
  bool saw_up_event = false;
  for (const auto& event : detector.events()) {
    saw_down_event = saw_down_event || !event.up;
    saw_up_event = saw_up_event || event.up;
  }
  EXPECT_TRUE(saw_down_event);
  EXPECT_TRUE(saw_up_event);

  // Full recovery at the end of the run: every agent healthy, both paths
  // fresh, all measure points back on their primaries.
  for (const auto& agent : bed.monitor().scheduler().agents()) {
    EXPECT_EQ(agent.health, AgentHealth::kHealthy) << agent.node;
  }
  for (const auto& key :
       std::vector<PathKey>{{"S1", "S2"}, {"L", "S1"}}) {
    const PathUsage usage =
        bed.monitor().current_usage(key.first, key.second);
    EXPECT_TRUE(usage.complete);
    EXPECT_EQ(usage.freshness, Freshness::kFresh);
    for (const auto& conn : usage.connections) {
      EXPECT_FALSE(conn.via_switch);
    }
  }
  EXPECT_GT(bed.monitor().stats().rounds_completed, 3000u);
}

}  // namespace
}  // namespace netqos::mon
