// Tier-2 soak: every registry measurement module over the generated
// 10k-interface fabric.
//
// The module system's scale promise is that observer modules ride the
// sharded poll train without unbounded state: once a couple of rounds
// have shown every interface to the stream, each module's footprint
// gauge must go flat — more rounds mean more samples, never more
// memory. This drives the full fabric through a DistributedMonitor
// with all registry modules attached to the coordinator (interface
// samples cross shard forwarders), snapshots the per-module
// netqos_module_footprint_bytes gauge after warmup, and asserts the
// remainder of the run adds samples but no state.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "monitor/distributed.h"
#include "monitor/modules/registry.h"
#include "netsim/services.h"
#include "obs/metrics.h"
#include "snmp/deploy.h"
#include "topology/generator.h"

namespace netqos::mon {
namespace {

TEST(SoakModules, FootprintsGoFlatOverTheTenThousandInterfaceFabric) {
  topo::FabricConfig fabric;
  fabric.target_interfaces = 10'000;
  const topo::NetworkTopology topo = topo::generate_fabric(fabric);

  sim::Simulator sim;
  auto net = sim::build_network(sim, topo);
  snmp::DeployOptions deploy;
  deploy.agent.hiccup_probability = 0.0;
  auto agents = snmp::deploy_agents(sim, *net, topo, deploy);

  obs::MetricsRegistry registry;
  DistributedConfig config;
  config.partition = PartitionStrategy::kInterfaceWeighted;
  config.base.metrics = &registry;
  config.base.scheduler.stagger = microseconds(200);

  const std::size_t leaves = topo::fabric_leaf_count(fabric);
  std::vector<sim::Host*> stations;
  for (int s = 0; s < 4; ++s) {
    stations.push_back(net->find_host("leaf" + std::to_string(s) + "h0"));
  }
  DistributedMonitor dist(sim, topo, stations, config);
  dist.add_path("leaf0h2", "leaf" + std::to_string(leaves - 1) + "h2");
  for (const ModuleSpec& spec : available_modules()) {
    dist.add_module(make_module(spec.name));
  }
  dist.start();

  // Ten rounds of 2 s polls sees every interface in the fabric; by then
  // every module has allocated whatever per-interface/per-path state it
  // will ever need.
  sim.run_until(seconds(20));
  std::map<std::string, ModuleStatus> warm;
  for (const ModuleStatus& status : dist.modules().statuses()) {
    warm[status.name] = status;
  }
  for (const ModuleSpec& spec : available_modules()) {
    ASSERT_TRUE(warm.count(spec.name)) << spec.name;
    EXPECT_GT(warm[spec.name].samples, 0u) << spec.name;
    EXPECT_GT(warm[spec.name].footprint_bytes, 0u) << spec.name;
  }

  // Twice as many rounds again: samples keep flowing, state stays put.
  // Fabric-scaled state (top-talkers' per-interface tallies) must be
  // exactly flat; modules with a bounded journal (ewma-anomaly's event
  // ring) may grow by at most that fixed cap, never with round count.
  sim.run_until(seconds(60));
  constexpr std::size_t kJournalSlack = 64 * 1024;
  for (const ModuleStatus& status : dist.modules().statuses()) {
    if (!warm.count(status.name)) continue;  // shard forwarders et al.
    const ModuleStatus& before = warm[status.name];
    EXPECT_GT(status.samples, before.samples) << status.name;
    EXPECT_EQ(status.errors, 0u) << status.name;
    if (status.name == "top-talkers") {
      EXPECT_EQ(status.footprint_bytes, before.footprint_bytes)
          << "per-interface state grew after full fabric coverage";
    } else {
      EXPECT_LE(status.footprint_bytes, before.footprint_bytes + kJournalSlack)
          << status.name << ": module state grew past its bounded journal";
    }
  }

  // The registry gauge tells the same story — per-module footprint is
  // queryable without touching the host, labelled by module + station.
  for (const ModuleSpec& spec : available_modules()) {
    const obs::Gauge* gauge = registry.find_gauge(
        "netqos_module_footprint_bytes",
        {{"module", spec.name}, {"station", stations[0]->name()}});
    ASSERT_NE(gauge, nullptr) << spec.name;
    EXPECT_GE(gauge->value(),
              static_cast<double>(warm[spec.name].footprint_bytes))
        << spec.name;
    EXPECT_LE(gauge->value(),
              static_cast<double>(warm[spec.name].footprint_bytes +
                                  kJournalSlack))
        << spec.name;
  }
}

}  // namespace
}  // namespace netqos::mon
