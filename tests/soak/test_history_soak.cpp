// Tier-2 soak: the history store's memory bound over a long horizon.
//
// A half-hour run at the 2 s poll cadence pushes ~900 samples per series
// through a deliberately tiny retention policy (raw ring 64 slots), so
// every ring wraps many times over. The store's footprint must never move
// after the series set stabilizes, occupancy must stay at the capacity
// bound, and windowed queries must keep answering from downsampled tiers
// after the raw horizon is long gone.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "history/store.h"

namespace netqos::mon {
namespace {

TEST(SoakHistory, FootprintStaysFlatWhileRingsWrapForHalfAnHour) {
  exp::TestbedOptions options;
  options.retention.raw_capacity = 64;
  options.retention.tiers = {{8 * kSecond, 64}, {32 * kSecond, 32}};
  exp::LirtssTestbed bed(options);
  bed.watch("S1", "N1").watch("S1", "S2");
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(1800),
                                        kilobytes_per_second(500)));

  // Let the series set stabilize, then pin the footprint.
  bed.run_until(seconds(60));
  const std::size_t path_footprint =
      bed.monitor().history().footprint_bytes();
  const std::size_t if_footprint =
      bed.monitor().stats_db().history().footprint_bytes();
  const std::size_t path_series =
      bed.monitor().history().series_count();
  ASSERT_GT(path_footprint, 0u);
  ASSERT_GT(if_footprint, 0u);

  // Check at several horizons: the bound must hold continuously, not
  // just at the end.
  for (const std::int64_t checkpoint : {300, 600, 1200, 1800}) {
    bed.run_until(seconds(checkpoint));
    EXPECT_EQ(bed.monitor().history().footprint_bytes(), path_footprint);
    EXPECT_EQ(bed.monitor().stats_db().history().footprint_bytes(),
              if_footprint);
    EXPECT_EQ(bed.monitor().history().series_count(), path_series);
  }

  // Occupancy is pinned at the capacity bound per series.
  const std::size_t per_series_cap = 64 + 64 + 32;
  for (const std::string& key : bed.monitor().history().keys()) {
    const hist::Series* series = bed.monitor().history().find(key);
    ASSERT_NE(series, nullptr);
    EXPECT_LE(series->bucket_count(), per_series_cap);
  }

  // Raw retention is ~128 s, yet a 12-minute window still answers —
  // from the 32 s tier, whose 32 slots reach ~1024 s back — with
  // extremes intact.
  const hist::WindowSummary window = bed.monitor().history().query(
      hist::path_series_key("S1", "N1", "avail"), seconds(1080),
      seconds(1800));
  ASSERT_GT(window.samples, 0u);
  EXPECT_TRUE(window.complete);
  EXPECT_GT(window.resolution, 0);
  EXPECT_LE(window.min, window.mean);
  EXPECT_LE(window.mean, window.max);
}

}  // namespace
}  // namespace netqos::mon
