// Modules under the sharded DistributedMonitor: coordinator modules see
// every shard's interface stream, and the stream survives an ownership
// handoff when a station goes dark.
#include "monitor/distributed.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "experiments/lirtss.h"
#include "monitor/modules/ewma_anomaly.h"
#include "monitor/modules/top_talkers.h"

namespace netqos::mon {
namespace {

double bytes_for_node(const TopTalkersModule& module,
                      const std::string& node) {
  double total = 0.0;
  for (const TalkerEntry& entry : module.top_interfaces(1000)) {
    if (entry.label.rfind(node + "/", 0) == 0) total += entry.bytes;
  }
  return total;
}

TEST(DistributedModules, CoordinatorModuleSeesEveryShard) {
  exp::LirtssTestbed bed;
  std::vector<sim::Host*> stations = {&bed.host("L"), &bed.host("S2")};
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations);
  dist.add_path("S1", "N1");
  auto& talkers = static_cast<TopTalkersModule&>(
      dist.add_module(std::make_unique<TopTalkersModule>()));

  bed.background().start();
  dist.start();
  bed.simulator().run_until(seconds(20));

  // Every polled agent shows up in the coordinator module's tally — no
  // matter which shard owns it.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    for (const std::string& node : dist.shard_agents(shard)) {
      EXPECT_GT(bytes_for_node(talkers, node), 0.0)
          << "agent " << node << " of shard " << shard;
    }
  }
  // Only the coordinator ranks; worker shards run just the forwarder.
  EXPECT_NE(dist.modules().find("top-talkers"), nullptr);
  EXPECT_NE(dist.workers()[1]->modules().find("shard-forwarder"), nullptr);
  EXPECT_EQ(dist.workers()[1]->modules().find("top-talkers"), nullptr);
}

TEST(DistributedModules, StreamSurvivesOwnershipHandoff) {
  exp::LirtssTestbed bed;
  std::vector<sim::Host*> stations = {&bed.host("L"), &bed.host("S2")};
  DistributedConfig config;
  config.ownership_handoff = true;
  DistributedMonitor dist(bed.simulator(), bed.topology(), stations,
                          config);
  dist.add_path("S1", "N1");
  auto& talkers = static_cast<TopTalkersModule&>(
      dist.add_module(std::make_unique<TopTalkersModule>()));
  auto& anomaly = static_cast<EwmaAnomalyModule&>(
      dist.add_module(std::make_unique<EwmaAnomalyModule>()));
  (void)anomaly;

  bed.add_load("S1", "N1",
               load::RateProfile::pulse(seconds(2), seconds(170),
                                        kilobytes_per_second(200)));
  bed.background().start();
  dist.start();
  bed.simulator().run_until(seconds(20));

  // The agents about to be orphaned (minus the dying station itself,
  // which stops answering polls entirely).
  const auto orphaned = dist.shard_agents(1);
  ASSERT_FALSE(orphaned.empty());

  bed.host("S2").find_interface("hme0")->link()->set_up(false);
  bed.simulator().run_until(seconds(60));
  ASSERT_TRUE(dist.shard_dark(1));

  std::map<std::string, double> before;
  for (const std::string& node : orphaned) {
    before[node] = bytes_for_node(talkers, node);
  }
  std::uint64_t samples_before = 0;
  for (const ModuleStatus& status : dist.modules().statuses()) {
    if (status.name == "top-talkers") samples_before = status.samples;
  }

  bed.simulator().run_until(seconds(120));

  // After the handoff, shard 0 polls the orphaned agents and the
  // coordinator's module keeps integrating their bytes.
  for (const std::string& node : orphaned) {
    if (node == "S2") continue;
    EXPECT_GT(bytes_for_node(talkers, node), before[node])
        << "agent " << node << " stalled across the handoff";
  }
  std::uint64_t samples_after = 0;
  for (const ModuleStatus& status : dist.modules().statuses()) {
    if (status.name == "top-talkers") samples_after = status.samples;
  }
  EXPECT_GT(samples_after, samples_before);
  EXPECT_EQ(dist.modules().total_errors(), 0u);

  // The watched path kept producing samples for path-level modules too.
  EXPECT_EQ(dist.coordinator().current_usage("S1", "N1").freshness,
            Freshness::kFresh);
}

}  // namespace
}  // namespace netqos::mon
