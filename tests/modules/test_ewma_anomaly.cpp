// EWMA anomaly module: forecast seeding, warmup suppression, shift
// detection, variance adaptation, and end-to-end behaviour on the
// LIRTSS testbed.
#include "monitor/modules/ewma_anomaly.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"

namespace netqos::mon {
namespace {

PathUsage usage_of(double used) {
  PathUsage usage;
  usage.complete = true;
  usage.used_at_bottleneck = used;
  usage.available = 1'000'000.0 - used;
  return usage;
}

const PathKey kPath{"S1", "N1"};

TEST(EwmaAnomaly, SteadyStreamNeverFires) {
  EwmaAnomalyModule module;
  for (int i = 0; i < 100; ++i) {
    module.on_path_sample(kPath, from_seconds(2.0 * i), usage_of(50'000.0));
  }
  EXPECT_TRUE(module.events().empty());
}

TEST(EwmaAnomaly, LevelShiftAfterWarmupFires) {
  EwmaAnomalyConfig config;
  config.warmup = 8;
  EwmaAnomalyModule module(config);
  int callbacks = 0;
  module.add_event_callback([&](const AnomalyEvent&) { ++callbacks; });

  // A noisy-but-steady level, then a 10x jump.
  for (int i = 0; i < 20; ++i) {
    const double jitter = (i % 2 == 0) ? 500.0 : -500.0;
    module.on_path_sample(kPath, from_seconds(2.0 * i),
                          usage_of(50'000.0 + jitter));
  }
  EXPECT_TRUE(module.events().empty());
  module.on_path_sample(kPath, from_seconds(40.0), usage_of(500'000.0));

  ASSERT_EQ(module.events().size(), 1u);
  EXPECT_EQ(callbacks, 1);
  const AnomalyEvent& event = module.events().front();
  EXPECT_EQ(event.path, kPath);
  EXPECT_EQ(event.time, from_seconds(40.0));
  EXPECT_DOUBLE_EQ(event.value, 500'000.0);
  EXPECT_GT(event.score, 3.0);  // threshold 9.0 => 3 standard deviations
  EXPECT_LT(event.forecast, 100'000.0);
}

TEST(EwmaAnomaly, ShiftDuringWarmupIsSuppressed) {
  EwmaAnomalyConfig config;
  config.warmup = 8;
  EwmaAnomalyModule module(config);
  for (int i = 0; i < 7; ++i) {
    module.on_path_sample(kPath, from_seconds(2.0 * i), usage_of(50'000.0));
  }
  module.on_path_sample(kPath, from_seconds(14.0), usage_of(500'000.0));
  EXPECT_TRUE(module.events().empty());
}

TEST(EwmaAnomaly, ForecastAdaptsToTheNewLevel) {
  EwmaAnomalyModule module;
  for (int i = 0; i < 20; ++i) {
    const double jitter = (i % 2 == 0) ? 500.0 : -500.0;
    module.on_path_sample(kPath, from_seconds(2.0 * i),
                          usage_of(50'000.0 + jitter));
  }
  // A sustained new level: the first samples are anomalous, but the
  // forecast and variance absorb the shift and the alarm clears.
  std::size_t fired_early = 0;
  for (int i = 0; i < 60; ++i) {
    module.on_path_sample(kPath, from_seconds(40.0 + 2.0 * i),
                          usage_of(500'000.0));
    if (i == 4) fired_early = module.events().size();
  }
  EXPECT_GE(fired_early, 1u);
  // No new anomalies in the last stretch of the steady new level.
  const std::size_t settled = module.events().size();
  for (int i = 0; i < 10; ++i) {
    module.on_path_sample(kPath, from_seconds(160.0 + 2.0 * i),
                          usage_of(500'000.0));
  }
  EXPECT_EQ(module.events().size(), settled);
}

TEST(EwmaAnomaly, PathsScoreIndependently) {
  EwmaAnomalyModule module;
  const PathKey other{"S1", "N2"};
  for (int i = 0; i < 20; ++i) {
    const double jitter = (i % 2 == 0) ? 500.0 : -500.0;
    module.on_path_sample(kPath, from_seconds(2.0 * i),
                          usage_of(50'000.0 + jitter));
    module.on_path_sample(other, from_seconds(2.0 * i),
                          usage_of(900'000.0 + jitter));
  }
  // A level that is business as usual for `other` is a 3-sigma shift for
  // kPath: only kPath's state flags it.
  module.on_path_sample(kPath, from_seconds(40.0), usage_of(900'000.0));
  module.on_path_sample(other, from_seconds(40.0), usage_of(900'000.0));
  ASSERT_EQ(module.events().size(), 1u);
  EXPECT_EQ(module.events().front().path, kPath);
}

TEST(EwmaAnomaly, NotesAndFootprintReflectState) {
  EwmaAnomalyModule module;
  EXPECT_EQ(module.footprint_bytes(), 0u);
  for (int i = 0; i < 5; ++i) {
    module.on_path_sample(kPath, from_seconds(2.0 * i), usage_of(50'000.0));
  }
  EXPECT_GT(module.footprint_bytes(), 0u);
  const auto notes = module.notes();
  ASSERT_FALSE(notes.empty());
  EXPECT_EQ(notes.front().key, "paths");
  EXPECT_EQ(notes.front().value, "1");
}

// End to end: a pulse load's onset shifts the watched path's usage far
// off its idle forecast, so the module (registered like any pipeline
// consumer) flags the change without any configured requirement.
TEST(EwmaAnomaly, FlagsPulseOnsetOnTestbed) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  auto& module = static_cast<EwmaAnomalyModule&>(
      bed.monitor().add_module(std::make_unique<EwmaAnomalyModule>()));
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(60), seconds(120),
                                        kilobytes_per_second(400)));
  bed.run_until(seconds(100));

  ASSERT_FALSE(module.events().empty());
  bool onset_flagged = false;
  for (const AnomalyEvent& event : module.events()) {
    if (event.time >= from_seconds(58.0) && event.time <= from_seconds(80.0) &&
        event.value > event.forecast) {
      onset_flagged = true;
    }
  }
  EXPECT_TRUE(onset_flagged);
}

}  // namespace
}  // namespace netqos::mon
