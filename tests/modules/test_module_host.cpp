// ModuleHost contract: ordered registration, ownership vs attachment,
// name dedup, interface-consumer gating, telemetry counters, and the
// registry factory behind --modules.
#include "monitor/module.h"

#include <gtest/gtest.h>

#include <sstream>

#include "fake_core.h"
#include "monitor/modules/registry.h"

namespace netqos::mon {
namespace {

/// Records every hook invocation into a shared journal, so tests can
/// assert cross-module ordering.
class Probe : public Module {
 public:
  Probe(std::string name, std::vector<std::string>& journal,
        bool interfaces = false)
      : Module(std::move(name)), journal_(journal), interfaces_(interfaces) {}

  void init(ModuleCore&) override { journal_.push_back(name() + ".init"); }
  bool wants_interface_samples() const override { return interfaces_; }
  void on_interface_sample(const InterfaceKey&, SimTime,
                           const RateSample&) override {
    journal_.push_back(name() + ".interface");
  }
  void on_path_sample(const PathKey&, SimTime, const PathUsage&) override {
    journal_.push_back(name() + ".path");
  }
  void produce(ModuleCore&, SimTime) override {
    journal_.push_back(name() + ".produce");
  }
  void on_round_end(SimTime) override {
    journal_.push_back(name() + ".round_end");
  }
  void flush() override { journal_.push_back(name() + ".flush"); }

 private:
  std::vector<std::string>& journal_;
  bool interfaces_;
};

class ModuleHostTest : public ::testing::Test {
 protected:
  FakeCore core;
  obs::MetricsRegistry metrics;
  ModuleHost host{core, metrics, "L"};
  std::vector<std::string> journal;
};

TEST_F(ModuleHostTest, DeliveryFollowsRegistrationOrder) {
  host.add(std::make_unique<Probe>("a", journal));
  host.add(std::make_unique<Probe>("b", journal));
  journal.clear();

  host.dispatch_path_sample({"S1", "N1"}, from_seconds(2.0), PathUsage{});
  host.run_round(from_seconds(2.0));
  host.flush();
  EXPECT_EQ(journal,
            (std::vector<std::string>{"a.path", "b.path", "a.produce",
                                      "b.produce", "a.round_end",
                                      "b.round_end", "a.flush", "b.flush"}));
}

TEST_F(ModuleHostTest, InterfaceSamplesOnlyReachDeclaredConsumers) {
  host.add(std::make_unique<Probe>("paths-only", journal));
  EXPECT_FALSE(host.has_interface_consumers());

  host.add(std::make_unique<Probe>("hot", journal, /*interfaces=*/true));
  EXPECT_TRUE(host.has_interface_consumers());
  journal.clear();

  host.dispatch_interface_sample({"S1", "hme0"}, from_seconds(2.0),
                                 RateSample{});
  EXPECT_EQ(journal, std::vector<std::string>{"hot.interface"});
}

TEST_F(ModuleHostTest, DuplicateNamesGetSuffixed) {
  Module& first = host.add(std::make_unique<Probe>("dup", journal));
  Module& second = host.add(std::make_unique<Probe>("dup", journal));
  EXPECT_EQ(first.name(), "dup");
  EXPECT_EQ(second.name(), "dup#2");
  EXPECT_EQ(host.find("dup"), &first);
  EXPECT_EQ(host.find("dup#2"), &second);
  EXPECT_EQ(host.find("dup#3"), nullptr);
}

TEST_F(ModuleHostTest, DoubleRegistrationThrows) {
  Probe probe("p", journal);
  host.attach(probe);
  EXPECT_THROW(host.attach(probe), std::logic_error);
}

TEST_F(ModuleHostTest, AttachedModuleDetachesOnDestruction) {
  {
    Probe probe("stack", journal, /*interfaces=*/true);
    host.attach(probe);
    EXPECT_EQ(host.size(), 1u);
    EXPECT_TRUE(host.has_interface_consumers());
  }
  EXPECT_EQ(host.size(), 0u);
  EXPECT_FALSE(host.has_interface_consumers());
  // Nothing dangles: dispatch after the module died is a no-op.
  host.dispatch_path_sample({"S1", "N1"}, from_seconds(2.0), PathUsage{});
}

TEST_F(ModuleHostTest, TelemetryCountsDeliveriesPerModule) {
  host.add(std::make_unique<Probe>("a", journal));
  host.add(std::make_unique<Probe>("hot", journal, /*interfaces=*/true));

  host.dispatch_path_sample({"S1", "N1"}, from_seconds(2.0), PathUsage{});
  host.dispatch_interface_sample({"S1", "hme0"}, from_seconds(2.0),
                                 RateSample{});
  host.dispatch_interface_sample({"S2", "hme0"}, from_seconds(2.0),
                                 RateSample{});

  const auto statuses = host.statuses();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[0].name, "a");
  EXPECT_EQ(statuses[0].samples, 1u);  // path sample only
  EXPECT_EQ(statuses[1].name, "hot");
  EXPECT_EQ(statuses[1].samples, 3u);  // path + two interface samples
  EXPECT_EQ(host.total_errors(), 0u);

  // The same counters live in the metrics registry under module labels.
  std::ostringstream prom;
  metrics.render_prometheus(prom);
  EXPECT_NE(prom.str().find("netqos_module_samples_total"),
            std::string::npos);
  EXPECT_NE(prom.str().find("module=\"hot\""), std::string::npos);
  EXPECT_NE(prom.str().find("station=\"L\""), std::string::npos);
}

TEST(ModuleRegistry, ListsAndConstructsEveryModule) {
  ASSERT_FALSE(available_modules().empty());
  for (const ModuleSpec& spec : available_modules()) {
    auto module = make_module(spec.name);
    ASSERT_NE(module, nullptr) << spec.name;
    EXPECT_EQ(module->name(), spec.name);
    EXPECT_FALSE(spec.description.empty());
  }
  EXPECT_EQ(make_module("no-such-module"), nullptr);
}

TEST(ModuleRegistry, ParsesModuleLists) {
  const auto both = make_modules("ewma-anomaly,top-talkers");
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0]->name(), "ewma-anomaly");
  EXPECT_EQ(both[1]->name(), "top-talkers");

  EXPECT_TRUE(make_modules("").empty());
  EXPECT_EQ(make_modules(",top-talkers,").size(), 1u);
  EXPECT_THROW(make_modules("ewma-anomaly,bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace netqos::mon
