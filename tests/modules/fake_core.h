// Minimal ModuleCore for driving modules and a ModuleHost without a
// simulator: empty topology/plan, fixed intervals, and a recorder of
// every emission a module routes back through the core.
#pragma once

#include <string>
#include <vector>

#include "monitor/module.h"

namespace netqos::mon {

class FakeCore : public ModuleCore {
 public:
  FakeCore()
      : plan_(PollPlan::build(topo_)), calculator_(topo_, plan_) {}

  const topo::NetworkTopology& topology() const override { return topo_; }
  const PollPlan& poll_plan() const override { return plan_; }
  const StatsDb& samples() const override { return db_; }
  const BandwidthCalculator& calculator() const override {
    return calculator_;
  }
  const std::vector<WatchedPath>& watched_paths() const override {
    return watched_;
  }
  SimDuration poll_interval() const override { return 2 * kSecond; }
  SimDuration stale_after() const override { return 6 * kSecond; }
  bool connection_down(std::size_t) const override { return false; }
  const std::string& station() const override { return station_; }

  void emit_path_sample(const PathKey& key, SimTime time,
                        const PathUsage& usage) override {
    emitted_paths.push_back({key, time, usage});
  }
  void emit_connection_sample(std::size_t connection, SimTime time,
                              BytesPerSecond used) override {
    emitted_connections.push_back({connection, time, used});
  }
  void observe_path_age(SimDuration age) override {
    observed_ages.push_back(age);
  }

  struct EmittedPath {
    PathKey key;
    SimTime time;
    PathUsage usage;
  };
  struct EmittedConnection {
    std::size_t connection;
    SimTime time;
    BytesPerSecond used;
  };
  std::vector<EmittedPath> emitted_paths;
  std::vector<EmittedConnection> emitted_connections;
  std::vector<SimDuration> observed_ages;

 private:
  topo::NetworkTopology topo_;
  PollPlan plan_;
  BandwidthCalculator calculator_;
  StatsDb db_;
  std::vector<WatchedPath> watched_;
  std::string station_ = "test";
};

}  // namespace netqos::mon
