// Top-talkers module: byte integration from the interface-sample hot
// path, deterministic ranking, top-N truncation, and whole-testbed
// ranking of the loaded segment above idle ones.
#include "monitor/modules/top_talkers.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"

namespace netqos::mon {
namespace {

RateSample rate_of(double in, double out, double interval = 2.0) {
  RateSample rate;
  rate.interval_seconds = interval;
  rate.in_rate = in;
  rate.out_rate = out;
  return rate;
}

TEST(TopTalkers, IntegratesRatesIntoBytes) {
  TopTalkersModule module;
  // 2 polls x (1000+500) B/s x 2 s = 6000 B.
  module.on_interface_sample({"S1", "hme0"}, from_seconds(2.0),
                             rate_of(1000.0, 500.0));
  module.on_interface_sample({"S1", "hme0"}, from_seconds(4.0),
                             rate_of(1000.0, 500.0));
  const auto top = module.top_interfaces();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top.front().label, "S1/hme0");
  EXPECT_DOUBLE_EQ(top.front().bytes, 6000.0);
}

TEST(TopTalkers, RanksByVolumeThenLabel) {
  TopTalkersModule module;
  module.on_interface_sample({"S1", "hme0"}, from_seconds(2.0),
                             rate_of(100.0, 0.0));
  module.on_interface_sample({"S2", "hme0"}, from_seconds(2.0),
                             rate_of(900.0, 0.0));
  module.on_interface_sample({"N1", "hme0"}, from_seconds(2.0),
                             rate_of(100.0, 0.0));
  const auto top = module.top_interfaces();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].label, "S2/hme0");
  // Equal volumes tie-break alphabetically for a deterministic ranking.
  EXPECT_EQ(top[1].label, "N1/hme0");
  EXPECT_EQ(top[2].label, "S1/hme0");
}

TEST(TopTalkers, TopNTruncates) {
  TopTalkersConfig config;
  config.top_n = 2;
  TopTalkersModule module(config);
  for (int i = 0; i < 5; ++i) {
    module.on_interface_sample({"S" + std::to_string(i), "hme0"},
                               from_seconds(2.0),
                               rate_of(100.0 * (i + 1), 0.0));
  }
  EXPECT_EQ(module.top_interfaces().size(), 2u);
  EXPECT_EQ(module.top_interfaces().front().label, "S4/hme0");
  // An explicit n overrides the configured default.
  EXPECT_EQ(module.top_interfaces(4).size(), 4u);
}

TEST(TopTalkers, FootprintGrowsWithTrackedInterfaces) {
  TopTalkersModule module;
  EXPECT_EQ(module.footprint_bytes(), 0u);
  module.on_interface_sample({"S1", "hme0"}, from_seconds(2.0),
                             rate_of(100.0, 0.0));
  const std::size_t one = module.footprint_bytes();
  EXPECT_GT(one, 0u);
  // Same interface again: no new state.
  module.on_interface_sample({"S1", "hme0"}, from_seconds(4.0),
                             rate_of(100.0, 0.0));
  EXPECT_EQ(module.footprint_bytes(), one);
  module.on_interface_sample({"S2", "hme0"}, from_seconds(2.0),
                             rate_of(100.0, 0.0));
  EXPECT_GT(module.footprint_bytes(), one);
}

// End to end on the LIRTSS testbed: a sustained load from L to N1 must
// rank the loaded hosts' interfaces above the idle leaf N2, and the
// watched path tally must be nonzero.
TEST(TopTalkers, LoadedSegmentOutranksIdleOnTestbed) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  auto& module = static_cast<TopTalkersModule&>(
      bed.monitor().add_module(std::make_unique<TopTalkersModule>()));
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(115),
                                        kilobytes_per_second(300)));
  bed.run_until(seconds(120));

  const auto top = module.top_interfaces(100);
  ASSERT_FALSE(top.empty());
  double n1_bytes = 0.0, n2_bytes = 0.0;
  for (const TalkerEntry& entry : top) {
    if (entry.label.rfind("N1/", 0) == 0) n1_bytes += entry.bytes;
    if (entry.label.rfind("N2/", 0) == 0) n2_bytes += entry.bytes;
  }
  // ~300 KB/s for ~115 s through N1; N2 sees only background chatter.
  EXPECT_GT(n1_bytes, 10'000'000.0);
  EXPECT_GT(n1_bytes, 2.0 * n2_bytes);

  const auto paths = module.top_paths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths.front().label, "S1<->N1");
  EXPECT_GT(paths.front().bytes, 10'000'000.0);
}

}  // namespace
}  // namespace netqos::mon
