// Latency module: probe RTT streams aggregate per target, flow into the
// module's telemetry via count_external_sample, and surface in notes.
#include "monitor/modules/latency_module.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "netsim/services.h"

namespace netqos::mon {
namespace {

TEST(LatencyModule, AggregatesPerTargetRtt) {
  exp::LirtssTestbed bed;
  sim::EchoService echo_s1(bed.host("S1"));
  sim::EchoService echo_n1(bed.host("N1"));
  LatencyProbe fast(bed.simulator(), bed.host("L"), bed.host("S1").ip());
  LatencyProbe slow(bed.simulator(), bed.host("L"), bed.host("N1").ip());

  auto& module = static_cast<LatencyModule&>(
      bed.monitor().add_module(std::make_unique<LatencyModule>()));
  module.track("L->S1", fast);
  module.track("L->N1", slow);
  fast.start();
  slow.start();
  bed.run_until(seconds(20));

  const auto& targets = module.targets();
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].label, "L->S1");
  EXPECT_EQ(targets[1].label, "L->N1");
  ASSERT_GT(targets[0].rtt.count(), 0u);
  ASSERT_GT(targets[1].rtt.count(), 0u);
  // The N1 path crosses the 10 Mbps hub; its serialization dominates.
  EXPECT_GT(targets[1].rtt.mean(), targets[0].rtt.mean() * 2);
  // Aggregates agree with the probes' own statistics.
  EXPECT_DOUBLE_EQ(targets[0].rtt.mean(), fast.rtt_stats().mean());
  EXPECT_EQ(targets[0].rtt.count(), fast.rtt_stats().count());

  // Probe echoes count as module samples even though they bypass the
  // host's dispatch.
  for (const ModuleStatus& status : bed.monitor().modules().statuses()) {
    if (status.name != "latency") continue;
    EXPECT_EQ(status.samples,
              targets[0].rtt.count() + targets[1].rtt.count());
  }

  const auto notes = module.notes();
  ASSERT_GE(notes.size(), 3u);
  EXPECT_EQ(notes[0].key, "targets");
  EXPECT_EQ(notes[0].value, "2");
  EXPECT_EQ(notes[1].key, "L->S1");
  EXPECT_NE(notes[1].value.find("probes"), std::string::npos);
  EXPECT_NE(notes[1].value.find("ms"), std::string::npos);
}

}  // namespace
}  // namespace netqos::mon
