// Assertion-backed versions of the paper's three experiments (§4.3).
// The bench binaries print the figures; these tests pin the shapes so a
// regression that breaks an experiment fails CI, not just eyeballs.
#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/report.h"

namespace netqos::exp {
namespace {

/// Shared fixture for the §4.3.1 staircase (it is the longest run, so the
/// result is computed once).
class Fig4Experiment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bed = new LirtssTestbed();
    profile = new load::RateProfile(load::RateProfile::staircase(
        kilobytes_per_second(100), seconds(120), kilobytes_per_second(100),
        seconds(60), 5, seconds(420)));
    bed->add_load("L", "N1", *profile);
    bed->watch("S1", "N1");
    bed->run_until(seconds(480));
  }
  static void TearDownTestSuite() {
    delete bed;
    bed = nullptr;
    delete profile;
    profile = nullptr;
  }

  static LirtssTestbed* bed;
  static load::RateProfile* profile;
};

LirtssTestbed* Fig4Experiment::bed = nullptr;
load::RateProfile* Fig4Experiment::profile = nullptr;

TEST_F(Fig4Experiment, MeasuredTracksStaircase) {
  const TimeSeries& used = bed->monitor().used_series("S1", "N1");
  const BytesPerSecond bg =
      mon::estimate_background(used, seconds(430), seconds(480));

  struct Level {
    double kb;
    SimTime begin, end;
  };
  const Level levels[] = {
      {100, seconds(0), seconds(120)},  {200, seconds(120), seconds(180)},
      {300, seconds(180), seconds(240)}, {400, seconds(240), seconds(300)},
      {500, seconds(300), seconds(420)},
  };
  for (const Level& level : levels) {
    const auto row = mon::analyze_window(
        used, level.begin, level.end, kilobytes_per_second(level.kb), bg,
        seconds(6));
    // Paper Table 2: measured-less-background runs ~4% high; accept 0-8%.
    EXPECT_GT(row.percent_error, 0.0) << level.kb << " KB/s";
    EXPECT_LT(row.percent_error, 8.0) << level.kb << " KB/s";
    // Max individual error bounded (paper saw up to 16%).
    EXPECT_LT(row.max_percent_error, 16.0) << level.kb << " KB/s";
  }
}

TEST_F(Fig4Experiment, BackgroundNearPaperLevel) {
  const TimeSeries& used = bed->monitor().used_series("S1", "N1");
  const BytesPerSecond bg =
      mon::estimate_background(used, seconds(430), seconds(480));
  // Paper: 10.824 KB/s ambient. Our generator is tuned to the same
  // regime; accept 5-20 KB/s.
  EXPECT_GT(bg, 5'000.0);
  EXPECT_LT(bg, 20'000.0);
}

TEST_F(Fig4Experiment, LoadEliminationVisible) {
  const TimeSeries& used = bed->monitor().used_series("S1", "N1");
  const double during = used.mean_between(seconds(360), seconds(418));
  const double after = used.mean_between(seconds(430), seconds(480));
  EXPECT_GT(during, 500'000.0);
  EXPECT_LT(after, 25'000.0);
}

TEST_F(Fig4Experiment, OverheadDecomposition) {
  // ~3.1% of the gap is L2/L3/L4 framing; headers alone cannot explain
  // more than ~3.5%, the rest is SNMP + residual background. Guard that
  // the total gap stays in the paper's regime (<8%).
  const TimeSeries& used = bed->monitor().used_series("S1", "N1");
  const BytesPerSecond bg =
      mon::estimate_background(used, seconds(430), seconds(480));
  const auto row = mon::analyze_window(used, seconds(300), seconds(420),
                                       kilobytes_per_second(500), bg,
                                       seconds(6));
  EXPECT_GT(row.percent_error, 2.0);
  EXPECT_LT(row.percent_error, 8.0);
}

TEST(Fig5Experiment, HubPathsReportSummedLoad) {
  LirtssTestbed bed;
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(20), seconds(60),
                                        kilobytes_per_second(200)));
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(40), seconds(80),
                                        kilobytes_per_second(200)));
  bed.watch("S1", "N1").watch("S1", "N2");
  bed.run_until(seconds(100));

  const TimeSeries& p1 = bed.monitor().used_series("S1", "N1");
  const TimeSeries& p2 = bed.monitor().used_series("S1", "N2");
  const BytesPerSecond bg =
      mon::estimate_background(p1, seconds(2), seconds(18));

  struct Window {
    SimTime begin, end;
    double expected_kb;
  };
  const Window windows[] = {
      {seconds(26), seconds(40), 200},   // only N1 load
      {seconds(46), seconds(60), 400},   // both: the hub sums
      {seconds(66), seconds(80), 200},   // only N2 load
      {seconds(86), seconds(100), 0},    // silence
  };
  for (const TimeSeries* series : {&p1, &p2}) {
    for (const Window& w : windows) {
      const double level =
          series->mean_between(w.begin, w.end) - bg;
      if (w.expected_kb == 0) {
        EXPECT_NEAR(level, 0.0, 8'000.0);
      } else {
        const double expected = w.expected_kb * 1000.0;
        EXPECT_NEAR(level, expected * 1.031, expected * 0.05)
            << "window " << to_seconds(w.begin) << "s";
      }
    }
  }
}

TEST(Fig6Experiment, SwitchIsolatesPerDestination) {
  LirtssTestbed bed;
  bed.add_load("L", "S2",
               load::RateProfile::pulse(seconds(20), seconds(60),
                                        kilobytes_per_second(2000)));
  bed.add_load("L", "S3",
               load::RateProfile::pulse(seconds(40), seconds(80),
                                        kilobytes_per_second(2000)));
  bed.add_load("L", "S1",
               load::RateProfile::pulse(seconds(100), seconds(120),
                                        kilobytes_per_second(2000)));
  bed.watch("S1", "S2").watch("S1", "S3");
  bed.run_until(seconds(140));

  const TimeSeries& s2 = bed.monitor().used_series("S1", "S2");
  const TimeSeries& s3 = bed.monitor().used_series("S1", "S3");
  const BytesPerSecond bg =
      mon::estimate_background(s2, seconds(2), seconds(18));
  const double full = 2'000'000.0 * 1.031;  // + wire framing

  // S2 load appears only on S1<->S2.
  EXPECT_NEAR(s2.mean_between(seconds(26), seconds(40)) - bg, full,
              full * 0.04);
  EXPECT_NEAR(s3.mean_between(seconds(26), seconds(40)) - bg, 0.0,
              10'000.0);
  // S3 load appears only on S1<->S3.
  EXPECT_NEAR(s3.mean_between(seconds(66), seconds(80)) - bg, full,
              full * 0.04);
  EXPECT_NEAR(s2.mean_between(seconds(66), seconds(80)) - bg, 0.0,
              10'000.0);
  // S1 load appears on BOTH (S1 has a single connection to the switch).
  EXPECT_NEAR(s2.mean_between(seconds(106), seconds(120)) - bg, full,
              full * 0.04);
  EXPECT_NEAR(s3.mean_between(seconds(106), seconds(120)) - bg, full,
              full * 0.04);
}

TEST(ExperimentHarness, HostLookupThrowsOnUnknown) {
  LirtssTestbed bed;
  EXPECT_THROW(bed.host("nope"), std::out_of_range);
  EXPECT_NO_THROW(bed.host("S6"));
}

TEST(ExperimentHarness, AgentCacheArtifactRaisesWorstCaseError) {
  // Ablation guard (paper §4.3.1 polling-delay spikes): the agent-side
  // cache's jittered refresh must be what produces the worst-case
  // individual errors — disabling it must shrink them.
  auto worst_error = [](bool cached) {
    TestbedOptions options;
    options.agent_cache = cached;
    LirtssTestbed bed(options);
    bed.add_load("L", "N1",
                 load::RateProfile::pulse(seconds(4), seconds(64),
                                          kilobytes_per_second(300)));
    bed.watch("S1", "N1");
    bed.run_until(seconds(64));
    const auto& used = bed.monitor().used_series("S1", "N1");
    return used.max_relative_error(seconds(10), seconds(62),
                                   300'000.0 * 1.031 + 11'000.0);
  };
  const double with_cache = worst_error(true);
  const double without_cache = worst_error(false);
  EXPECT_LT(without_cache, with_cache);
  EXPECT_LT(without_cache, 0.03);
  // Paper band: spikes of several percent up to ~16%.
  EXPECT_GT(with_cache, 0.03);
  EXPECT_LT(with_cache, 0.20);
}

}  // namespace
}  // namespace netqos::exp
