#include "common/units.h"

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace netqos {
namespace {

TEST(SimTimeConversions, SecondsRoundTrip) {
  EXPECT_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_seconds(2.5), 2 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(from_seconds(0.0), 0);
}

TEST(SimTimeConversions, TimeTicksAreCentiseconds) {
  EXPECT_EQ(to_timeticks(seconds(1)), 100u);
  EXPECT_EQ(to_timeticks(milliseconds(10)), 1u);
  EXPECT_EQ(to_timeticks(milliseconds(9)), 0u);  // truncation
  EXPECT_EQ(from_timeticks(100), seconds(1));
}

TEST(SimTimeConversions, DurationHelpers) {
  EXPECT_EQ(microseconds(1000), milliseconds(1));
  EXPECT_EQ(milliseconds(1000), seconds(1));
  EXPECT_EQ(nanoseconds(5), 5);
}

TEST(Units, BandwidthConstructors) {
  EXPECT_EQ(mbps(100), 100'000'000u);
  EXPECT_EQ(kbps(64), 64'000u);
  EXPECT_EQ(kilobytes_per_second(200), 200'000.0);
}

TEST(Units, ByteBitConversion) {
  EXPECT_EQ(to_bytes_per_second(mbps(10)), 1'250'000.0);
  EXPECT_EQ(to_bits_per_second(1'250'000.0), mbps(10));
}

TEST(Units, TransmissionDelay) {
  // 1250 bytes at 10 Mbps = 1 ms.
  EXPECT_EQ(transmission_delay(1250, mbps(10)), milliseconds(1));
  // 1 byte at 1 Gbps = 8 ns.
  EXPECT_EQ(transmission_delay(1, kGbps), 8);
  // Zero bytes take zero time.
  EXPECT_EQ(transmission_delay(0, mbps(10)), 0);
}

TEST(Units, TransmissionDelayNoOverflowOnLargeFrames) {
  // A full-size frame at the slowest plausible speed stays sane.
  const SimDuration d = transmission_delay(1518, kbps(1));
  EXPECT_EQ(d, static_cast<SimDuration>(1518) * 8 * kSecond / 1000);
}

TEST(Units, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(mbps(100)), "100Mbps");
  EXPECT_EQ(format_bandwidth(mbps(10)), "10Mbps");
  EXPECT_EQ(format_bandwidth(kbps(64)), "64Kbps");
  EXPECT_EQ(format_bandwidth(kGbps), "1Gbps");
  EXPECT_EQ(format_bandwidth(999), "999bps");
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(seconds(2)), "2.000s");
  EXPECT_EQ(format_time(milliseconds(1500)), "1.500s");
}

}  // namespace
}  // namespace netqos
