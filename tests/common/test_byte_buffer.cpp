#include "common/byte_buffer.h"

#include <gtest/gtest.h>

namespace netqos {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.put_u8(0x01);
  w.put_u16(0x0203);
  w.put_u32(0x04050607);
  const Bytes expected{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteWriter, WritesU64) {
  ByteWriter w;
  w.put_u64(0x0102030405060708ULL);
  ASSERT_EQ(w.size(), 8u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[7], 0x08);
}

TEST(ByteWriter, AppendsBytesAndStrings) {
  ByteWriter w;
  const Bytes chunk{0xaa, 0xbb};
  w.put_bytes(chunk);
  w.put_string("hi");
  const Bytes expected{0xaa, 0xbb, 'h', 'i'};
  EXPECT_EQ(w.bytes(), expected);
}

TEST(ByteWriter, PatchOverwritesByte) {
  ByteWriter w;
  w.put_u16(0xffff);
  w.patch_u8(0, 0x12);
  EXPECT_EQ(w.bytes()[0], 0x12);
  EXPECT_EQ(w.bytes()[1], 0xff);
}

TEST(ByteWriter, PatchPastEndThrows) {
  ByteWriter w;
  w.put_u8(0);
  EXPECT_THROW(w.patch_u8(1, 0), std::out_of_range);
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.put_u8(7);
  Bytes taken = std::move(w).take();
  EXPECT_EQ(taken, Bytes{7});
}

TEST(ByteReader, RoundTripsWriter) {
  ByteWriter w;
  w.put_u8(0x11);
  w.put_u16(0x2233);
  w.put_u32(0x44556677);
  w.put_u64(0x8899aabbccddeeffULL);
  w.put_string("xyz");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0x11);
  EXPECT_EQ(r.get_u16(), 0x2233);
  EXPECT_EQ(r.get_u32(), 0x44556677u);
  EXPECT_EQ(r.get_u64(), 0x8899aabbccddeeffULL);
  EXPECT_EQ(r.get_string(3), "xyz");
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, UnderflowThrows) {
  const Bytes data{0x01};
  ByteReader r(data);
  EXPECT_EQ(r.get_u8(), 0x01);
  EXPECT_THROW(r.get_u8(), BufferUnderflow);
}

TEST(ByteReader, GetU32UnderflowThrows) {
  const Bytes data{0x01, 0x02};
  ByteReader r(data);
  EXPECT_THROW(r.get_u32(), BufferUnderflow);
}

TEST(ByteReader, PeekDoesNotConsume) {
  const Bytes data{0x42, 0x43};
  ByteReader r(data);
  EXPECT_EQ(r.peek_u8(), 0x42);
  EXPECT_EQ(r.peek_u8(), 0x42);
  EXPECT_EQ(r.get_u8(), 0x42);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(ByteReader, GetBytesReturnsViewAndAdvances) {
  const Bytes data{1, 2, 3, 4, 5};
  ByteReader r(data);
  auto view = r.get_bytes(3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 1);
  EXPECT_EQ(view[2], 3);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(ByteReader, EmptyBufferBehaves) {
  const Bytes data;
  ByteReader r(data);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.peek_u8(), BufferUnderflow);
}

}  // namespace
}  // namespace netqos
