// BufferPool: recycled byte buffers for the SNMP hot path.
#include "common/buffer_pool.h"

#include <gtest/gtest.h>

namespace netqos {
namespace {

TEST(BufferPool, FirstAcquireReturnsEmptyBuffer) {
  BufferPool pool;
  Bytes b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.stats().acquires, 1u);
  EXPECT_EQ(pool.stats().reuses, 0u);
}

TEST(BufferPool, ReleasedCapacityIsReused) {
  BufferPool pool;
  Bytes b = pool.acquire();
  b.resize(512);
  const auto* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);

  Bytes again = pool.acquire();
  EXPECT_TRUE(again.empty());          // cleared on release
  EXPECT_GE(again.capacity(), 512u);   // but capacity retained
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, DiscardsBuffersBeyondMaxPooled) {
  BufferPool pool(/*max_pooled=*/2);
  for (int i = 0; i < 4; ++i) {
    Bytes b;
    b.resize(16);
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.pooled(), 2u);
  EXPECT_EQ(pool.stats().discards, 2u);
}

TEST(BufferPool, DiscardsOversizedAndEmptyBuffers) {
  BufferPool pool(/*max_pooled=*/8, /*max_capacity=*/64);
  Bytes big;
  big.resize(1024);  // would pin 1 KiB forever
  pool.release(std::move(big));
  pool.release(Bytes{});  // no capacity — pooling it gains nothing
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_EQ(pool.stats().discards, 2u);
}

TEST(BufferPool, SteadyStateLoopAllocatesOnce) {
  BufferPool pool;
  for (int i = 0; i < 100; ++i) {
    Bytes b = pool.acquire();
    b.resize(256);
    pool.release(std::move(b));
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 100u);
  EXPECT_EQ(s.reuses, 99u);  // everything after the first is recycled
  EXPECT_EQ(s.discards, 0u);
}

}  // namespace
}  // namespace netqos
