#include <gtest/gtest.h>

#include "common/log.h"
#include "common/stats.h"

namespace netqos {
namespace {

class LogCapture {
 public:
  LogCapture() {
    Log::set_sink([this](LogLevel level, const std::string& message) {
      lines.push_back({level, message});
    });
    previous_level_ = Log::level();
  }
  ~LogCapture() {
    Log::set_sink(nullptr);
    Log::set_level(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> lines;

 private:
  LogLevel previous_level_;
};

TEST(Log, LevelFiltering) {
  LogCapture capture;
  Log::set_level(LogLevel::kWarn);
  NETQOS_DEBUG() << "hidden";
  NETQOS_INFO() << "also hidden";
  NETQOS_WARN() << "visible " << 42;
  NETQOS_ERROR() << "error";
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.lines[0].first, LogLevel::kWarn);
  EXPECT_EQ(capture.lines[0].second, "visible 42");
  EXPECT_EQ(capture.lines[1].first, LogLevel::kError);
}

TEST(Log, OffSilencesEverything) {
  LogCapture capture;
  Log::set_level(LogLevel::kOff);
  NETQOS_ERROR() << "nope";
  EXPECT_TRUE(capture.lines.empty());
}

TEST(Log, TraceLevelPassesAll) {
  LogCapture capture;
  Log::set_level(LogLevel::kTrace);
  NETQOS_TRACE() << "t";
  NETQOS_DEBUG() << "d";
  EXPECT_EQ(capture.lines.size(), 2u);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Log, ComponentPrefix) {
  LogCapture capture;
  Log::set_level(LogLevel::kInfo);
  NETQOS_INFO_C("monitor") << "round done";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0].second, "[monitor] round done");
}

TEST(Log, SimulatedTimePrefix) {
  LogCapture capture;
  Log::set_level(LogLevel::kInfo);
  Log::set_time_source([] { return seconds(3) + 500 * kMillisecond; });
  NETQOS_INFO_C("snmp") << "retry";
  NETQOS_INFO() << "bare";
  Log::set_time_source(nullptr);
  ASSERT_EQ(capture.lines.size(), 2u);
  EXPECT_EQ(capture.lines[0].second, "[3.500s] [snmp] retry");
  EXPECT_EQ(capture.lines[1].second, "[3.500s] bare");
}

TEST(Percentile, EmptySeriesIsZero) {
  TimeSeries ts;
  EXPECT_EQ(ts.percentile(0.5), 0.0);
}

TEST(Percentile, SingleValue) {
  TimeSeries ts;
  ts.add(seconds(1), 7.0);
  EXPECT_EQ(ts.percentile(0.0), 7.0);
  EXPECT_EQ(ts.percentile(0.5), 7.0);
  EXPECT_EQ(ts.percentile(1.0), 7.0);
}

TEST(Percentile, InterpolatesOrderStatistics) {
  TimeSeries ts;
  // Unsorted insertion: percentile must sort.
  for (double v : {30.0, 10.0, 20.0, 40.0, 50.0}) ts.add(seconds(1), v);
  EXPECT_DOUBLE_EQ(ts.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(ts.percentile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(ts.percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(ts.percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(ts.percentile(0.125), 15.0);  // halfway 10..20
}

TEST(Percentile, WindowRespected) {
  TimeSeries ts;
  ts.add(seconds(1), 100.0);
  ts.add(seconds(10), 1.0);
  ts.add(seconds(11), 2.0);
  EXPECT_DOUBLE_EQ(ts.percentile_between(seconds(10), seconds(20), 1.0),
                   2.0);
}

TEST(Percentile, QuantileClamped) {
  TimeSeries ts;
  ts.add(seconds(1), 5.0);
  ts.add(seconds(2), 6.0);
  EXPECT_DOUBLE_EQ(ts.percentile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(ts.percentile(2.0), 6.0);
}

}  // namespace
}  // namespace netqos
