#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace netqos {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanIsHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformIntRespectsBounds) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Xoshiro256, UniformIntSingleValue) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Xoshiro256, ExponentialMeanMatches) {
  Xoshiro256 rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Xoshiro256, ExponentialIsNonNegative) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Xoshiro256, ForkedStreamsAreDecorrelated) {
  Xoshiro256 base(21);
  Xoshiro256 s1 = base.fork(1);
  Xoshiro256 s2 = base.fork(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (s1.next() == s2.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, ForkIsDeterministic) {
  Xoshiro256 a(33), b(33);
  Xoshiro256 fa = a.fork(5), fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Xoshiro256, UniformRangeRespected) {
  Xoshiro256 rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

}  // namespace
}  // namespace netqos
