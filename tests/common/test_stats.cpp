#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace netqos {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, HandlesNegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TimeSeries, AddAndSize) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(seconds(1), 10.0);
  ts.add(seconds(2), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.points()[1].value, 20.0);
}

TEST(TimeSeries, StatsBetweenIsHalfOpen) {
  TimeSeries ts;
  ts.add(seconds(0), 1.0);
  ts.add(seconds(1), 2.0);
  ts.add(seconds(2), 3.0);
  const RunningStats s = ts.stats_between(seconds(0), seconds(2));
  EXPECT_EQ(s.count(), 2u);  // t=2 excluded
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
}

TEST(TimeSeries, MeanBetweenEmptyWindowIsZero) {
  TimeSeries ts;
  ts.add(seconds(10), 5.0);
  EXPECT_EQ(ts.mean_between(seconds(0), seconds(5)), 0.0);
}

TEST(TimeSeries, MaxRelativeError) {
  TimeSeries ts;
  ts.add(seconds(1), 110.0);  // +10%
  ts.add(seconds(2), 95.0);   // -5%
  EXPECT_NEAR(ts.max_relative_error(seconds(0), seconds(3), 100.0), 0.10,
              1e-12);
}

TEST(TimeSeries, MaxRelativeErrorZeroReference) {
  TimeSeries ts;
  ts.add(seconds(1), 50.0);
  EXPECT_EQ(ts.max_relative_error(seconds(0), seconds(2), 0.0), 0.0);
}

TEST(TimeSeries, WindowOutsideDataIsEmpty) {
  TimeSeries ts;
  ts.add(seconds(5), 1.0);
  EXPECT_EQ(ts.stats_between(seconds(6), seconds(10)).count(), 0u);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, BucketsValuesAtAndBetweenBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.add(0.5);  // <= 1
  h.add(1.0);  // boundary counts in its own bucket (le semantics)
  h.add(3.0);  // <= 4
  h.add(9.0);  // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 0u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.mean(), 13.5 / 4.0);
}

TEST(Histogram, ExponentialFactoryDoublesBounds) {
  const Histogram h = Histogram::exponential(0.001, 2.0, 4);
  ASSERT_EQ(h.bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 0.001);
  EXPECT_DOUBLE_EQ(h.bounds()[3], 0.008);
}

TEST(Histogram, PercentileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.add(5.0);   // first bucket
  for (int i = 0; i < 10; ++i) h.add(15.0);  // second bucket
  // Median sits at the boundary between the two populated buckets.
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
  // q=0.75 lands midway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
}

TEST(Histogram, PercentileEmptyAndOverflow) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.percentile(0.95), 0.0);  // empty
  h.add(100.0);                        // only the overflow bucket
  // Overflow clamps to the largest finite bound.
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 2.0);
}

}  // namespace
}  // namespace netqos
