#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace netqos {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook data set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, HandlesNegativeValues) {
  RunningStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TimeSeries, AddAndSize) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(seconds(1), 10.0);
  ts.add(seconds(2), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.points()[1].value, 20.0);
}

TEST(TimeSeries, StatsBetweenIsHalfOpen) {
  TimeSeries ts;
  ts.add(seconds(0), 1.0);
  ts.add(seconds(1), 2.0);
  ts.add(seconds(2), 3.0);
  const RunningStats s = ts.stats_between(seconds(0), seconds(2));
  EXPECT_EQ(s.count(), 2u);  // t=2 excluded
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
}

TEST(TimeSeries, MeanBetweenEmptyWindowIsZero) {
  TimeSeries ts;
  ts.add(seconds(10), 5.0);
  EXPECT_EQ(ts.mean_between(seconds(0), seconds(5)), 0.0);
}

TEST(TimeSeries, MaxRelativeError) {
  TimeSeries ts;
  ts.add(seconds(1), 110.0);  // +10%
  ts.add(seconds(2), 95.0);   // -5%
  EXPECT_NEAR(ts.max_relative_error(seconds(0), seconds(3), 100.0), 0.10,
              1e-12);
}

TEST(TimeSeries, MaxRelativeErrorZeroReference) {
  TimeSeries ts;
  ts.add(seconds(1), 50.0);
  EXPECT_EQ(ts.max_relative_error(seconds(0), seconds(2), 0.0), 0.0);
}

TEST(TimeSeries, WindowOutsideDataIsEmpty) {
  TimeSeries ts;
  ts.add(seconds(5), 1.0);
  EXPECT_EQ(ts.stats_between(seconds(6), seconds(10)).count(), 0u);
}

}  // namespace
}  // namespace netqos
