#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"
#include "probe/wire.h"

namespace netqos::probe {
namespace {

ProbeHeader sample_header() {
  ProbeHeader header;
  header.kind = ProbeKind::kProbe;
  header.flags = kFlagLast;
  header.session = 0xA1B2C3D4;
  header.stream = 7;
  header.seq = 42;
  header.sent_at = 17 * kSecond + 3 * kMicrosecond;
  return header;
}

TEST(ProbeWire, ProbeRoundTrip) {
  const ProbeHeader in = sample_header();
  const Bytes wire = encode_probe(in);
  EXPECT_EQ(wire.size(), kProbeHeaderBytes);
  EXPECT_EQ(peek_kind(wire), ProbeKind::kProbe);

  const ProbeHeader out = decode_probe(wire);
  EXPECT_EQ(out.kind, ProbeKind::kProbe);
  EXPECT_EQ(out.flags, kFlagLast);
  EXPECT_EQ(out.session, 0xA1B2C3D4u);
  EXPECT_EQ(out.stream, 7u);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.sent_at, 17 * kSecond + 3 * kMicrosecond);
}

TEST(ProbeWire, ReportRoundTrip) {
  ProbeReport in;
  in.header = sample_header();
  in.arrivals = {{0, 5 * kMillisecond},
                 {1, 6 * kMillisecond},
                 {3, 9 * kMillisecond}};  // seq 2 lost
  const Bytes wire = encode_report(in);
  EXPECT_EQ(peek_kind(wire), ProbeKind::kReport);

  const ProbeReport out = decode_report(wire);
  EXPECT_EQ(out.header.kind, ProbeKind::kReport);
  EXPECT_EQ(out.header.session, in.header.session);
  EXPECT_EQ(out.header.stream, in.header.stream);
  ASSERT_EQ(out.arrivals.size(), 3u);
  EXPECT_EQ(out.arrivals[2].seq, 3u);
  EXPECT_EQ(out.arrivals[2].received_at, 9 * kMillisecond);
}

TEST(ProbeWire, EveryTruncationThrows) {
  ProbeReport report;
  report.header = sample_header();
  report.arrivals = {{0, kMillisecond}, {1, 2 * kMillisecond}};
  const Bytes wire = encode_report(report);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::uint8_t> prefix(wire.data(), len);
    // Truncation inside the fixed header surfaces as BufferUnderflow,
    // inside the entry list as the count bounds check — both are
    // runtime_errors the sink catches as "malformed".
    EXPECT_THROW(decode_report(prefix), std::runtime_error) << len;
  }
  const Bytes probe = encode_probe(sample_header());
  for (std::size_t len = 0; len < probe.size(); ++len) {
    const std::span<const std::uint8_t> prefix(probe.data(), len);
    EXPECT_THROW(decode_probe(prefix), std::runtime_error) << len;
  }
}

TEST(ProbeWire, RejectsBadMagicVersionAndKind) {
  Bytes wire = encode_probe(sample_header());
  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(decode_probe(bad_magic), ProbeWireError);

  Bytes bad_version = wire;
  bad_version[4] = kProbeVersion + 1;
  EXPECT_THROW(decode_probe(bad_version), ProbeWireError);

  Bytes bad_kind = wire;
  bad_kind[5] = 9;
  EXPECT_THROW(decode_probe(bad_kind), ProbeWireError);

  // Kind mismatch: a probe frame is not a report and vice versa.
  EXPECT_THROW(decode_report(wire), ProbeWireError);
  ProbeReport report;
  report.header = sample_header();
  EXPECT_THROW(decode_probe(encode_report(report)), ProbeWireError);
}

TEST(ProbeWire, ReportCountIsBoundsCheckedBeforeAllocation) {
  ProbeReport report;
  report.header = sample_header();
  report.arrivals = {{0, kMillisecond}};
  Bytes wire = encode_report(report);
  // Inflate the entry count past both the per-frame byte budget and
  // kMaxReportEntries; decode must reject it up front (R6 discipline)
  // instead of reserving 0xFFFF entries.
  wire[kProbeHeaderBytes] = 0xFF;
  wire[kProbeHeaderBytes + 1] = 0xFF;
  EXPECT_THROW(decode_report(wire), ProbeWireError);

  // Claiming one more entry than the frame carries is also rejected.
  wire[kProbeHeaderBytes] = 0;
  wire[kProbeHeaderBytes + 1] = 2;
  EXPECT_THROW(decode_report(wire), ProbeWireError);
}

TEST(ProbeWire, EncodeReportEnforcesEntryCap) {
  ProbeReport report;
  report.header = sample_header();
  report.arrivals.resize(kMaxReportEntries + 1);
  EXPECT_THROW(encode_report(report), ProbeWireError);
  report.arrivals.resize(kMaxReportEntries);
  // A full report still fits a single MTU-sized frame.
  EXPECT_LE(encode_report(report).size(), 1472u);
}

}  // namespace
}  // namespace netqos::probe
