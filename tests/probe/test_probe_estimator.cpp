#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "experiments/lirtss.h"
#include "loadgen/profile.h"
#include "probe/registry.h"
#include "probe/sink.h"
#include "topology/model.h"
#include "topology/path.h"

namespace netqos::probe {
namespace {

/// Builds a registry estimator probing S1 -> N1 on the stock testbed
/// (bottleneck: the 10 Mbps hub segment, 1.25e6 bytes/s).
class EstimatorTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    const auto path = topo::traverse_recursive(bed_.topology(), "S1", "N1");
    ASSERT_TRUE(path.has_value());
    capacity_bits_ = std::numeric_limits<double>::infinity();
    for (const std::size_t index : *path) {
      capacity_bits_ = std::min(
          capacity_bits_,
          static_cast<double>(connection_speed(
              bed_.topology(), bed_.topology().connections()[index])));
    }
    sink_ = std::make_unique<ProbeSink>(bed_.host("N1"));
    estimator_ = make_estimator(
        GetParam(), bed_.host("S1"), bed_.host("N1").ip(),
        {"S1", "N1", static_cast<BitsPerSecond>(capacity_bits_)});
  }

  double capacity_bytes() const { return capacity_bits_ / 8.0; }

  exp::LirtssTestbed bed_;
  double capacity_bits_ = 0.0;
  std::unique_ptr<ProbeSink> sink_;
  std::unique_ptr<Estimator> estimator_;
};

TEST_P(EstimatorTest, ConvergesNearCapacityOnAQuietPath) {
  estimator_->start();
  bed_.run_until(seconds(60));
  estimator_->stop();

  const auto latest = estimator_->latest();
  ASSERT_TRUE(latest.has_value());
  // Loose band: every method must land within 25% of the idle path's
  // capacity (the monitor's own polling is the only competing traffic).
  EXPECT_NEAR(*latest, capacity_bytes(), 0.25 * capacity_bytes());
  EXPECT_EQ(estimator_->convergence(), Convergence::kConverged);
  ASSERT_TRUE(estimator_->first_estimate_at().has_value());
  EXPECT_LT(*estimator_->first_estimate_at(), seconds(15));

  const EstimatorStats& stats = estimator_->stats();
  EXPECT_GT(stats.probes_sent, 0u);
  EXPECT_GT(stats.reports_received, 0u);
  EXPECT_GT(stats.probe_wire_bytes, 0u);
  EXPECT_GT(stats.report_wire_bytes, 0u);
  EXPECT_EQ(stats.reports_malformed, 0u);
}

TEST_P(EstimatorTest, SeesThroughAKnownConstantCrossLoad) {
  // 400 KB/s CBR between the hub hosts, contending the probed path's
  // bottleneck segment once — the contention-sensing case probing
  // exists for. (Load sourced from S1 itself would serialize through
  // S1's own NIC ahead of the probes, and load from the switch side
  // crosses two serial 10 Mbps stages, which the periodic method's
  // busy-fraction counts twice by design.) Truth is ~850 KB/s. Active
  // methods are noisier than passive counters, so the band is wide —
  // but an estimator stuck at full capacity (blind to the load) or at
  // zero (swamped by it) must fail.
  bed_.add_load("N2", "N1",
                load::RateProfile::pulse(seconds(0), seconds(130),
                                         kilobytes_per_second(400)));
  estimator_->start();
  bed_.run_until(seconds(120));
  estimator_->stop();

  const auto latest = estimator_->latest();
  ASSERT_TRUE(latest.has_value());
  const double truth = capacity_bytes() - 400'000.0;
  EXPECT_NEAR(*latest, truth, 0.3 * capacity_bytes());
}

TEST_P(EstimatorTest, StopHaltsProbeInjection) {
  estimator_->start();
  bed_.run_until(seconds(20));
  estimator_->stop();
  EXPECT_FALSE(estimator_->running());
  const std::uint64_t sent = estimator_->stats().probes_sent;
  bed_.run_until(seconds(40));
  EXPECT_EQ(estimator_->stats().probes_sent, sent);
}

TEST_P(EstimatorTest, IntrusivenessIsSmallButAccounted) {
  estimator_->start();
  bed_.run_until(seconds(60));
  estimator_->stop();
  const double fraction = estimator_->intrusiveness(seconds(60));
  EXPECT_GT(fraction, 0.0);
  // No estimator may claim more than a tenth of the bottleneck.
  EXPECT_LT(fraction, 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    AllEstimators, EstimatorTest,
    ::testing::ValuesIn(available_estimators()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(ProbeRegistry, KnowsExactlyTheThreeMethods) {
  const auto& names = available_estimators();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "pair");
  EXPECT_EQ(names[1], "train");
  EXPECT_EQ(names[2], "periodic");
  for (const std::string& name : names) {
    EXPECT_TRUE(is_estimator_name(name));
  }
  EXPECT_FALSE(is_estimator_name("pathchirp"));
}

TEST(ProbeRegistry, UnknownNameThrows) {
  exp::LirtssTestbed bed;
  EXPECT_THROW(make_estimator("pathchirp", bed.host("S1"),
                              bed.host("N1").ip(), {"S1", "N1", 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace netqos::probe
