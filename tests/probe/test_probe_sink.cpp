#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "experiments/lirtss.h"
#include "netsim/packet.h"
#include "probe/sink.h"
#include "probe/wire.h"

namespace netqos::probe {
namespace {

// Drives a ProbeSink on N1 with hand-built probe frames from S1, so the
// sink's reporting contract is pinned independently of any estimator.
class ProbeSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sink_.emplace(bed_.host("N1"));
    sender_port_ = bed_.host("S1").udp().allocate_ephemeral_port();
    ASSERT_TRUE(bed_.host("S1").udp().bind(
        sender_port_, [this](const sim::Ipv4Packet& packet) {
          reports_.push_back(decode_report(packet.udp.payload));
        }));
  }

  void send_probe(std::uint32_t stream, std::uint32_t seq, bool last,
                  std::uint32_t session = 1) {
    ProbeHeader header;
    header.session = session;
    header.stream = stream;
    header.seq = seq;
    header.flags = last ? kFlagLast : 0;
    header.sent_at = bed_.simulator().now();
    ASSERT_TRUE(bed_.host("S1").udp().send(bed_.host("N1").ip(),
                                           sim::kProbePort, sender_port_,
                                           encode_probe(header)));
  }

  exp::LirtssTestbed bed_;
  std::optional<ProbeSink> sink_;
  std::uint16_t sender_port_ = 0;
  std::vector<ProbeReport> reports_;
};

TEST_F(ProbeSinkTest, LastFlagClosesStreamAndEchoesArrivalsInOrder) {
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    send_probe(/*stream=*/3, seq, /*last=*/seq == 3);
  }
  bed_.run_until(seconds(1));

  EXPECT_EQ(sink_->stats().probes_received, 4u);
  EXPECT_EQ(sink_->stats().reports_sent, 1u);
  EXPECT_EQ(sink_->open_streams(), 0u);
  ASSERT_EQ(reports_.size(), 1u);
  const ProbeReport& report = reports_[0];
  EXPECT_EQ(report.header.session, 1u);
  EXPECT_EQ(report.header.stream, 3u);
  ASSERT_EQ(report.arrivals.size(), 4u);
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    EXPECT_EQ(report.arrivals[seq].seq, seq);
    if (seq > 0) {
      // Arrival order on a quiet path is send order, and the sink's
      // timestamps must be strictly advancing simulated time.
      EXPECT_GT(report.arrivals[seq].received_at,
                report.arrivals[seq - 1].received_at);
    }
  }
}

TEST_F(ProbeSinkTest, ConcurrentStreamsNeverMixArrivals) {
  // Interleave two streams of the same session; each report must carry
  // only its own stream's arrivals.
  send_probe(1, 0, false);
  send_probe(2, 0, false);
  send_probe(1, 1, true);
  send_probe(2, 1, true);
  bed_.run_until(seconds(1));

  ASSERT_EQ(reports_.size(), 2u);
  for (const ProbeReport& report : reports_) {
    ASSERT_EQ(report.arrivals.size(), 2u) << report.header.stream;
    EXPECT_EQ(report.arrivals[0].seq, 0u);
    EXPECT_EQ(report.arrivals[1].seq, 1u);
  }
  EXPECT_EQ(reports_[0].header.stream + reports_[1].header.stream, 3u);
}

TEST_F(ProbeSinkTest, MalformedDatagramIsCountedAndDropped) {
  Bytes junk = {0xDE, 0xAD, 0xBE, 0xEF, 0x00};
  ASSERT_TRUE(bed_.host("S1").udp().send(bed_.host("N1").ip(),
                                         sim::kProbePort, sender_port_,
                                         std::move(junk)));
  bed_.run_until(seconds(1));
  EXPECT_EQ(sink_->stats().malformed, 1u);
  EXPECT_EQ(sink_->stats().probes_received, 0u);
  EXPECT_TRUE(reports_.empty());
}

TEST_F(ProbeSinkTest, EvictsOldestOpenStreamAtTheCap) {
  // 65 streams whose last probe never arrives: the sink must cap open
  // state at 64 (sink.h kMaxOpenStreams) by dropping the oldest.
  for (std::uint32_t stream = 0; stream < 65; ++stream) {
    send_probe(stream, 0, /*last=*/false);
  }
  bed_.run_until(seconds(1));
  EXPECT_EQ(sink_->open_streams(), 64u);
  EXPECT_EQ(sink_->stats().streams_evicted, 1u);

  // Closing the evicted stream now opens a fresh single-probe stream:
  // the original seq-0 arrival is gone.
  send_probe(0, 1, /*last=*/true);
  bed_.run_until(seconds(2));
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0].arrivals.size(), 1u);
  EXPECT_EQ(reports_[0].arrivals[0].seq, 1u);
}

TEST_F(ProbeSinkTest, OneSinkPerHost) {
  EXPECT_THROW(ProbeSink second(bed_.host("N1")), std::logic_error);
}

}  // namespace
}  // namespace netqos::probe
