#include <gtest/gtest.h>

#include <memory>

#include "experiments/lirtss.h"
#include "experiments/shootout.h"
#include "loadgen/profile.h"
#include "monitor/qos.h"
#include "probe/hybrid.h"
#include "probe/registry.h"
#include "probe/sink.h"

namespace netqos::probe {
namespace {

/// 10 Mbps hub bottleneck on the probed S1 -> N1 pair, in bits/s.
constexpr BitsPerSecond kCapacityBits = 10'000'000;

/// Wires the full hybrid pipeline on a testbed: passive watch, predictive
/// detector with a comfortable requirement, periodic estimator + sink,
/// and the cross-check module feeding detector confidence.
struct HybridRig {
  explicit HybridRig(exp::LirtssTestbed& bed) {
    bed.watch("S1", "N1");
    detector = std::make_unique<mon::PredictiveDetector>(bed.monitor());
    detector->add_requirement("S1", "N1", kilobytes_per_second(200));
    sink = std::make_unique<ProbeSink>(bed.host("N1"));
    estimator = make_estimator("periodic", bed.host("S1"),
                               bed.host("N1").ip(),
                               {"S1", "N1", kCapacityBits});
    auto module = std::make_unique<HybridEstimator>();
    hybrid = module.get();
    hybrid->set_estimator(*estimator);
    hybrid->set_detector(*detector);
    bed.monitor().add_module(std::move(module));
    estimator->start();
  }

  std::unique_ptr<mon::PredictiveDetector> detector;
  std::unique_ptr<ProbeSink> sink;
  std::unique_ptr<Estimator> estimator;
  HybridEstimator* hybrid = nullptr;
};

TEST(HybridEstimatorTest, AgreementOnVisibleSteadyLoadKeepsFullConfidence) {
  // SNMP-visible steady stream on the hub segment, covering the whole
  // run (a trailing edge would transiently out-date the probe view and
  // charge the lag): passive and probe views agree within the deadband,
  // so confidence stays snapped at 1.0 and the detector behaves exactly
  // like the probe-less control pipeline — whatever the trend logic
  // does at the load's onset, the cross-check must not add to it.
  const auto visible_load = [](exp::LirtssTestbed& bed) {
    bed.add_load("N2", "N1",
                 load::RateProfile::pulse(seconds(10), seconds(130),
                                          kilobytes_per_second(300)));
  };

  exp::LirtssTestbed control_bed;
  visible_load(control_bed);
  control_bed.watch("S1", "N1");
  mon::PredictiveDetector control(control_bed.monitor());
  control.add_requirement("S1", "N1", kilobytes_per_second(200));
  control_bed.run_until(seconds(120));

  exp::LirtssTestbed bed;
  visible_load(bed);
  HybridRig rig(bed);
  bed.run_until(seconds(120));

  EXPECT_GT(rig.hybrid->cross_checks(), 0u);
  EXPECT_DOUBLE_EQ(rig.hybrid->confidence(), 1.0);
  EXPECT_DOUBLE_EQ(rig.detector->path_confidence("S1", "N1"), 1.0);
  EXPECT_EQ(rig.detector->warning_count(), control.warning_count());
}

TEST(HybridEstimatorTest, HiddenCrossTrafficLowersConfidence) {
  // The shootout's hidden-cross variant: agentless hosts X1/X2 burst on
  // the hub, invisible to every polled counter. Probes feel the
  // contention the passive figure misses, so the cross-check must
  // charge the disagreement against passive confidence.
  exp::TestbedOptions options;
  options.spec_text = exp::hidden_cross_spec_text();
  exp::LirtssTestbed bed(options);
  bed.add_load("X1", "X2",
               load::RateProfile::random_bursts(
                   seconds(10), seconds(140), kilobytes_per_second(500),
                   seconds(5), seconds(4), 0x5eedc805));
  HybridRig rig(bed);
  bed.run_until(seconds(150));

  EXPECT_GT(rig.hybrid->cross_checks(), 0u);
  EXPECT_LT(rig.hybrid->confidence(), 0.95);
  ASSERT_TRUE(rig.hybrid->last_disagreement().has_value());
  // The detector sees exactly the module's smoothed score (its clamp
  // floor sits well below what this scenario produces).
  EXPECT_DOUBLE_EQ(rig.detector->path_confidence("S1", "N1"),
                   rig.hybrid->confidence());
}

TEST(HybridEstimatorTest, InertWithoutAnEstimator) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  auto detector = std::make_unique<mon::PredictiveDetector>(bed.monitor());
  detector->add_requirement("S1", "N1", kilobytes_per_second(200));
  auto module = std::make_unique<HybridEstimator>();
  HybridEstimator* hybrid = module.get();
  hybrid->set_detector(*detector);
  bed.monitor().add_module(std::move(module));
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(10), seconds(50),
                                        kilobytes_per_second(300)));
  bed.run_until(seconds(60));

  // No estimator wired: samples flow past the module untouched.
  EXPECT_EQ(hybrid->cross_checks(), 0u);
  EXPECT_DOUBLE_EQ(hybrid->confidence(), 1.0);
  EXPECT_FALSE(hybrid->last_disagreement().has_value());
  EXPECT_DOUBLE_EQ(detector->path_confidence("S1", "N1"), 1.0);
}

TEST(HybridEstimatorTest, StaleEstimatesAreNotCrossChecked) {
  exp::LirtssTestbed bed;
  HybridRig rig(bed);
  bed.run_until(seconds(30));
  const std::uint64_t checks_while_fresh = rig.hybrid->cross_checks();
  EXPECT_GT(checks_while_fresh, 0u);

  // Stop probing; once the last estimate ages past max_estimate_age the
  // module must stop charging (or crediting) the passive view.
  rig.estimator->stop();
  bed.run_until(seconds(60));
  const std::uint64_t after_stale = rig.hybrid->cross_checks();
  bed.run_until(seconds(90));
  EXPECT_EQ(rig.hybrid->cross_checks(), after_stale);
}

}  // namespace
}  // namespace netqos::probe
