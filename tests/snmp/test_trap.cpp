// SNMP notifications: v2 traps, classic v1 Trap-PDU wire format, and the
// listener's translation between them.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/simulator.h"
#include "snmp/agent.h"
#include "snmp/mib2.h"
#include "snmp/trap.h"

namespace netqos::snmp {
namespace {

TEST(TrapV1Codec, RoundTripsClassicTrap) {
  Message msg;
  msg.version = SnmpVersion::kV1;
  msg.community = "public";
  TrapV1Pdu trap;
  trap.enterprise = Oid({1, 3, 6, 1, 4, 1, 9999});
  trap.agent_addr = 0x0a000001;
  trap.generic_trap = GenericTrap::kLinkDown;
  trap.specific_trap = 0;
  trap.time_stamp_ticks = 12345;
  trap.varbinds.push_back({mib2::if_column(mib2::kIfIndexColumn, 2),
                           SnmpValue(std::int64_t{2})});
  msg.trap_v1 = trap;

  const Message back = decode_message(encode_message(msg));
  ASSERT_TRUE(back.trap_v1.has_value());
  EXPECT_EQ(back.version, SnmpVersion::kV1);
  EXPECT_EQ(back.trap_v1->enterprise, trap.enterprise);
  EXPECT_EQ(back.trap_v1->agent_addr, trap.agent_addr);
  EXPECT_EQ(back.trap_v1->generic_trap, GenericTrap::kLinkDown);
  EXPECT_EQ(back.trap_v1->time_stamp_ticks, 12345u);
  ASSERT_EQ(back.trap_v1->varbinds.size(), 1u);
  EXPECT_EQ(back.trap_v1->varbinds[0], trap.varbinds[0]);
}

TEST(TrapV1Codec, EnterpriseSpecificRoundTrip) {
  Message msg;
  msg.version = SnmpVersion::kV1;
  TrapV1Pdu trap;
  trap.enterprise = Oid({1, 3, 6, 1, 4, 1, 42});
  trap.generic_trap = GenericTrap::kEnterpriseSpecific;
  trap.specific_trap = 17;
  msg.trap_v1 = trap;
  const Message back = decode_message(encode_message(msg));
  ASSERT_TRUE(back.trap_v1.has_value());
  EXPECT_EQ(back.trap_v1->generic_trap, GenericTrap::kEnterpriseSpecific);
  EXPECT_EQ(back.trap_v1->specific_trap, 17);
}

/// Manager host + agent host on a cable, with a trap listener.
class TrapFixture : public ::testing::Test {
 protected:
  TrapFixture() : net(sim) {
    manager = &net.add_host("manager");
    target = &net.add_host("target");
    net.add_host_interface(*manager, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*target, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.2"));
    net.connect(*manager, "eth0", *target, "eth0");

    agent = std::make_unique<SnmpAgent>(sim, target->udp(), AgentConfig{});
    register_system_group(agent->mib(), sim, "target");
    agent->set_trap_sink(manager->ip());
    listener = std::make_unique<TrapListener>(
        manager->udp(),
        [this](const TrapNotification& t) { received.push_back(t); });
  }

  sim::Simulator sim;
  sim::Network net;
  sim::Host* manager = nullptr;
  sim::Host* target = nullptr;
  std::unique_ptr<SnmpAgent> agent;
  std::unique_ptr<TrapListener> listener;
  std::vector<TrapNotification> received;
};

TEST_F(TrapFixture, V2TrapDelivered) {
  sim.run_until(seconds(5));
  ASSERT_TRUE(agent->send_trap(
      mib2::kLinkDownTrap,
      {{mib2::if_column(mib2::kIfIndexColumn, 1),
        SnmpValue(std::int64_t{1})}}));
  sim.run_until(seconds(6));

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].trap_oid, mib2::kLinkDownTrap);
  EXPECT_EQ(received[0].source, target->ip());
  EXPECT_NEAR(received[0].sys_uptime_ticks, 500u, 5u);
  ASSERT_EQ(received[0].varbinds.size(), 1u);
  EXPECT_EQ(agent->stats().traps_sent, 1u);
}

TEST_F(TrapFixture, V1GenericTrapTranslated) {
  ASSERT_TRUE(agent->send_trap_v1(Oid({1, 3, 6, 1, 4, 1, 9999}),
                                  GenericTrap::kLinkUp, 0));
  sim.run_until(seconds(1));
  ASSERT_EQ(received.size(), 1u);
  // RFC 2576: linkUp (generic 3) -> 1.3.6.1.6.3.1.1.5.4.
  EXPECT_EQ(received[0].trap_oid, mib2::kLinkUpTrap);
}

TEST_F(TrapFixture, V1ColdStartTranslated) {
  agent->send_trap_v1(Oid({1, 3, 6, 1, 4, 1, 9999}),
                      GenericTrap::kColdStart, 0);
  sim.run_until(seconds(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].trap_oid, Oid({1, 3, 6, 1, 6, 3, 1, 1, 5, 1}));
}

TEST_F(TrapFixture, V1EnterpriseSpecificTranslated) {
  agent->send_trap_v1(Oid({1, 3, 6, 1, 4, 1, 42}),
                      GenericTrap::kEnterpriseSpecific, 7);
  sim.run_until(seconds(1));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].trap_oid, Oid({1, 3, 6, 1, 4, 1, 42, 0, 7}));
}

TEST_F(TrapFixture, MalformedTrapCounted) {
  const auto sport = target->udp().allocate_ephemeral_port();
  target->udp().send(manager->ip(), sim::kSnmpTrapPort, sport,
                     {0x01, 0x02, 0x03});
  sim.run_until(seconds(1));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(listener->stats().malformed, 1u);
}

TEST_F(TrapFixture, NonTrapPduIgnored) {
  Message msg;
  msg.pdu.type = PduType::kGetRequest;
  const auto sport = target->udp().allocate_ephemeral_port();
  target->udp().send(manager->ip(), sim::kSnmpTrapPort, sport,
                     encode_message(msg));
  sim.run_until(seconds(1));
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(listener->stats().malformed, 1u);
}

TEST_F(TrapFixture, ListenerPortConflictThrows) {
  EXPECT_THROW(TrapListener(manager->udp(), [](const TrapNotification&) {}),
               std::logic_error);
}

}  // namespace
}  // namespace netqos::snmp
