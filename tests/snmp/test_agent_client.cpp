// Manager <-> agent conversations over the simulated network.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/simulator.h"
#include "snmp/agent.h"
#include "snmp/client.h"
#include "snmp/mib2.h"

namespace netqos::snmp {
namespace {

class AgentClientFixture : public ::testing::Test {
 protected:
  AgentClientFixture() : net(sim) {
    manager = &net.add_host("manager");
    target = &net.add_host("target");
    net.add_host_interface(*manager, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*target, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.2"));
    net.connect(*manager, "eth0", *target, "eth0");

    AgentConfig config;
    config.hiccup_probability = 0.0;
    agent = std::make_unique<SnmpAgent>(sim, target->udp(), config);
    register_system_group(agent->mib(), sim, "target");
    if_table = std::make_unique<Mib2IfTable>(
        agent->mib(), sim,
        std::vector<const sim::Nic*>{target->find_interface("eth0")});

    client = std::make_unique<SnmpClient>(sim, manager->udp());
  }

  sim::Simulator sim;
  sim::Network net;
  sim::Host* manager = nullptr;
  sim::Host* target = nullptr;
  std::unique_ptr<SnmpAgent> agent;
  std::unique_ptr<Mib2IfTable> if_table;
  std::unique_ptr<SnmpClient> client;
};

TEST_F(AgentClientFixture, GetSysUpTime) {
  sim.run_until(seconds(3));
  std::optional<SnmpResult> got;
  client->get(target->ip(), "public", {mib2::kSysUpTime.child(0)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(4));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  ASSERT_EQ(got->varbinds.size(), 1u);
  // Roughly 3 seconds of uptime = ~300 ticks at request time.
  const auto ticks = as_timeticks(got->varbinds[0].value);
  EXPECT_GE(ticks, 300u);
  EXPECT_LE(ticks, 310u);
  EXPECT_GT(got->rtt, 0);
  EXPECT_EQ(got->attempts, 1);
}

TEST_F(AgentClientFixture, GetMultipleVarbinds) {
  std::optional<SnmpResult> got;
  client->get(target->ip(), "public",
              {mib2::kSysUpTime.child(0), mib2::kSysName.child(0),
               mib2::if_column(mib2::kIfSpeedColumn, 1)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value() && got->ok());
  ASSERT_EQ(got->varbinds.size(), 3u);
  EXPECT_EQ(std::get<std::string>(got->varbinds[1].value), "target");
  EXPECT_EQ(as_gauge32(got->varbinds[2].value), 100'000'000u);
}

TEST_F(AgentClientFixture, V2cMissingObjectGivesException) {
  std::optional<SnmpResult> got;
  client->get(target->ip(), "public", {Oid({1, 2, 3, 4})},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());  // v2c: noError with exception varbind
  EXPECT_EQ(got->varbinds[0].value,
            SnmpValue(VarBindException::kNoSuchInstance));
}

TEST_F(AgentClientFixture, V1MissingObjectGivesNoSuchName) {
  ClientConfig config;
  config.version = SnmpVersion::kV1;
  SnmpClient v1(sim, manager->udp(), config);
  std::optional<SnmpResult> got;
  v1.get(target->ip(), "public", {Oid({1, 2, 3, 4})},
         [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, SnmpResult::Status::kErrorResponse);
  EXPECT_EQ(got->error_status, ErrorStatus::kNoSuchName);
  EXPECT_EQ(got->error_index, 1);
}

TEST_F(AgentClientFixture, WrongCommunityTimesOut) {
  std::optional<SnmpResult> got;
  client->get(target->ip(), "wrong", {mib2::kSysUpTime.child(0)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(10));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, SnmpResult::Status::kTimeout);
  EXPECT_EQ(got->attempts, 3);  // initial + 2 retries
  EXPECT_EQ(agent->stats().auth_failures, 3u);
}

TEST_F(AgentClientFixture, UnreachableAgentFailsToSend) {
  std::optional<SnmpResult> got;
  client->get(sim::Ipv4Address::parse("10.9.9.9"), "public",
              {mib2::kSysUpTime.child(0)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, SnmpResult::Status::kSendFailed);
}

TEST_F(AgentClientFixture, GetNextWalksSystemGroup) {
  std::optional<SnmpResult> got;
  client->get_next(target->ip(), "public", {mib2::kSysDescr},
                   [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->varbinds[0].oid, mib2::kSysDescr.child(0));
}

TEST_F(AgentClientFixture, GetNextPastEndGivesEndOfMibView) {
  std::optional<SnmpResult> got;
  client->get_next(target->ip(), "public", {Oid({9, 9, 9})},
                   [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->varbinds[0].value,
            SnmpValue(VarBindException::kEndOfMibView));
}

TEST_F(AgentClientFixture, GetBulkReturnsRepetitions) {
  std::optional<SnmpResult> got;
  client->get_bulk(target->ip(), "public", {mib2::kIfEntry}, 0, 10,
                   [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_EQ(got->varbinds.size(), 10u);
  // All results are within (or marked end of) the MIB in OID order.
  for (std::size_t i = 1; i < got->varbinds.size(); ++i) {
    EXPECT_LT(got->varbinds[i - 1].oid, got->varbinds[i].oid);
  }
}

TEST_F(AgentClientFixture, CountersVisibleThroughAgent) {
  // Generate some traffic so counters move, then poll.
  target->udp().bind(7000, [](const sim::Ipv4Packet&) {});
  const auto sport = manager->udp().allocate_ephemeral_port();
  manager->udp().send(target->ip(), 7000, sport, {}, 1000);
  sim.run_until(seconds(1));

  std::optional<SnmpResult> got;
  client->get(target->ip(), "public",
              {mib2::if_column(mib2::kIfInOctetsColumn, 1)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(2));
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_GE(as_counter32(got->varbinds[0].value), 1000u);
}

TEST_F(AgentClientFixture, MalformedPacketCountsDecodeError) {
  const auto sport = manager->udp().allocate_ephemeral_port();
  manager->udp().send(target->ip(), sim::kSnmpPort, sport,
                      {0xde, 0xad, 0xbe, 0xef});
  sim.run_until(seconds(1));
  EXPECT_EQ(agent->stats().decode_errors, 1u);
}

TEST_F(AgentClientFixture, SetRequestAnswersGenErr) {
  // This agent is read-only; SET gets a genErr response.
  std::optional<SnmpResult> got;
  Pdu pdu;
  // Use client get path but craft via get(): simpler to send SET via a
  // raw message through the UDP stack.
  Message msg;
  msg.pdu.type = PduType::kSetRequest;
  msg.pdu.request_id = 77;
  msg.pdu.varbinds.push_back({mib2::kSysName.child(0),
                              SnmpValue(std::string("evil"))});
  const auto sport = manager->udp().allocate_ephemeral_port();
  std::optional<Message> reply;
  manager->udp().bind(sport, [&](const sim::Ipv4Packet& p) {
    reply = decode_message(p.udp.payload);
  });
  manager->udp().send(target->ip(), sim::kSnmpPort, sport,
                      encode_message(msg));
  sim.run_until(seconds(1));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->pdu.type, PduType::kGetResponse);
  EXPECT_EQ(reply->pdu.error_status, ErrorStatus::kGenErr);
  (void)got;
  (void)pdu;
}

TEST_F(AgentClientFixture, ClientStatsTrack) {
  std::optional<SnmpResult> got;
  client->get(target->ip(), "public", {mib2::kSysUpTime.child(0)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  EXPECT_EQ(client->stats().requests_sent, 1u);
  EXPECT_EQ(client->stats().responses, 1u);
  EXPECT_EQ(client->stats().timeouts, 0u);
  EXPECT_EQ(client->outstanding(), 0u);
}

TEST_F(AgentClientFixture, SnmpTrafficCountsOnWire) {
  // The paper attributes ~2% of measured load to SNMP queries: polling
  // itself must consume bandwidth.
  const auto before = manager->find_interface("eth0")->counters();
  std::optional<SnmpResult> got;
  client->get(target->ip(), "public", {mib2::kSysUpTime.child(0)},
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  const auto after = manager->find_interface("eth0")->counters();
  EXPECT_GT(after.if_out_octets, before.if_out_octets);  // request
  EXPECT_GT(after.if_in_octets, before.if_in_octets);    // response
}

}  // namespace
}  // namespace netqos::snmp
