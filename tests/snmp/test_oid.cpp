#include "snmp/oid.h"

#include <gtest/gtest.h>

namespace netqos::snmp {
namespace {

TEST(Oid, ParseAndToString) {
  const Oid oid = Oid::parse("1.3.6.1.2.1.1.3.0");
  EXPECT_EQ(oid.size(), 9u);
  EXPECT_EQ(oid[0], 1u);
  EXPECT_EQ(oid[8], 0u);
  EXPECT_EQ(oid.to_string(), "1.3.6.1.2.1.1.3.0");
}

TEST(Oid, ParseRejectsMalformed) {
  EXPECT_THROW(Oid::parse(""), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1..3"), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1.3."), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1.x.3"), std::invalid_argument);
  EXPECT_THROW(Oid::parse("1.3.99999999999"), std::invalid_argument);
}

TEST(Oid, ParseSingleArc) {
  const Oid oid = Oid::parse("5");
  EXPECT_EQ(oid.size(), 1u);
  EXPECT_EQ(oid[0], 5u);
}

TEST(Oid, LexicographicOrdering) {
  EXPECT_LT(Oid({1, 3, 6}), Oid({1, 3, 7}));
  EXPECT_LT(Oid({1, 3}), Oid({1, 3, 0}));  // prefix sorts first
  EXPECT_EQ(Oid({1, 3, 6}), Oid({1, 3, 6}));
  EXPECT_LT(Oid({1, 3, 6, 1}), Oid({1, 4}));
}

TEST(Oid, ChildAndConcat) {
  const Oid base({1, 3, 6});
  EXPECT_EQ(base.child(1), Oid({1, 3, 6, 1}));
  EXPECT_EQ(base.concat(Oid({2, 1})), Oid({1, 3, 6, 2, 1}));
  EXPECT_EQ(base.size(), 3u);  // originals untouched
}

TEST(Oid, StartsWith) {
  const Oid oid({1, 3, 6, 1, 2, 1});
  EXPECT_TRUE(oid.starts_with(Oid({1, 3, 6})));
  EXPECT_TRUE(oid.starts_with(oid));
  EXPECT_FALSE(oid.starts_with(Oid({1, 3, 7})));
  EXPECT_FALSE(Oid({1, 3}).starts_with(oid));  // prefix longer than oid
  EXPECT_TRUE(oid.starts_with(Oid{}));         // empty prefix
}

TEST(Mib2Oids, MatchPaperTable1) {
  // Table 1 of the paper gives these numeric OIDs.
  EXPECT_EQ(mib2::kSysUpTime.to_string(), "1.3.6.1.2.1.1.3");
  EXPECT_EQ(mib2::if_column(mib2::kIfSpeedColumn, 1).to_string(),
            "1.3.6.1.2.1.2.2.1.5.1");
  EXPECT_EQ(mib2::if_column(mib2::kIfInOctetsColumn, 2).to_string(),
            "1.3.6.1.2.1.2.2.1.10.2");
  EXPECT_EQ(mib2::if_column(mib2::kIfInUcastPktsColumn, 1).to_string(),
            "1.3.6.1.2.1.2.2.1.11.1");
  EXPECT_EQ(mib2::if_column(mib2::kIfOutOctetsColumn, 1).to_string(),
            "1.3.6.1.2.1.2.2.1.16.1");
  EXPECT_EQ(mib2::if_column(mib2::kIfOutUcastPktsColumn, 1).to_string(),
            "1.3.6.1.2.1.2.2.1.17.1");
}

TEST(Oid, RoundTripThroughString) {
  const Oid original({1, 3, 6, 1, 4, 1, 9999, 42, 0});
  EXPECT_EQ(Oid::parse(original.to_string()), original);
}

}  // namespace
}  // namespace netqos::snmp
