// TablePoller: whole-ifTable GETBULK collection, including truncation,
// request budgets, and the 1k-row walker regression for the reserve-
// from-ifNumber prefetch.
#include "snmp/table.h"

#include <gtest/gtest.h>

#include <optional>

#include "netsim/network.h"
#include "netsim/simulator.h"
#include "snmp/agent.h"
#include "snmp/client.h"
#include "snmp/mib2.h"
#include "snmp/walker.h"

namespace netqos::snmp {
namespace {

/// Manager + one agent serving a synthetic N-row ifTable (the usual
/// Mib2IfTable needs real NICs; here rows are registered directly).
class TableFixture : public ::testing::Test {
 protected:
  void deploy(std::uint32_t rows) {
    manager = &net.add_host("manager");
    target = &net.add_host("target");
    net.add_host_interface(*manager, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*target, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.2"));
    net.connect(*manager, "eth0", *target, "eth0");

    AgentConfig config;
    config.hiccup_probability = 0.0;
    agent = std::make_unique<SnmpAgent>(sim, target->udp(), config);
    MibTree& mib = agent->mib();
    mib.register_constant(mib2::kSysUpTime.child(0), TimeTicks{4242});
    mib.register_constant(mib2::kIfNumber.child(0),
                          static_cast<std::int64_t>(rows));
    for (std::uint32_t i = 1; i <= rows; ++i) {
      mib.register_constant(mib2::if_column(mib2::kIfDescrColumn, i),
                            "if" + std::to_string(i));
      mib.register_constant(mib2::if_column(mib2::kIfInOctetsColumn, i),
                            Counter32{i * 100});
      mib.register_constant(mib2::if_column(mib2::kIfOutOctetsColumn, i),
                            Counter32{i * 200});
      mib.register_constant(mib2::if_column(mib2::kIfInUcastPktsColumn, i),
                            Counter32{i * 3});
      mib.register_constant(mib2::if_column(mib2::kIfOutUcastPktsColumn, i),
                            Counter32{i * 4});
      mib.register_constant(mib2::if_column(mib2::kIfInDiscardsColumn, i),
                            Counter32{0});
      mib.register_constant(mib2::if_column(mib2::kIfOutDiscardsColumn, i),
                            Counter32{1});
    }
    client = std::make_unique<SnmpClient>(sim, manager->udp());
  }

  static std::vector<Oid> counter_columns() {
    return {mib2::kIfEntry.child(mib2::kIfInOctetsColumn),
            mib2::kIfEntry.child(mib2::kIfOutOctetsColumn),
            mib2::kIfEntry.child(mib2::kIfInUcastPktsColumn),
            mib2::kIfEntry.child(mib2::kIfOutUcastPktsColumn),
            mib2::kIfEntry.child(mib2::kIfInDiscardsColumn),
            mib2::kIfEntry.child(mib2::kIfOutDiscardsColumn)};
  }

  sim::Simulator sim;
  sim::Network net{sim};
  sim::Host* manager = nullptr;
  sim::Host* target = nullptr;
  std::unique_ptr<SnmpAgent> agent;
  std::unique_ptr<SnmpClient> client;
};

TEST_F(TableFixture, CollectsSmallTableInOneRequest) {
  deploy(8);
  TablePoller poller(*client, target->ip(), "public", counter_columns());
  std::optional<TableResult> got;
  poller.collect([&](TableResult r) { got = std::move(r); });
  EXPECT_TRUE(poller.busy());
  sim.run_until(seconds(2));

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok) << got->error;
  EXPECT_EQ(got->uptime_ticks, 4242u);
  EXPECT_EQ(got->if_number, 8u);
  ASSERT_EQ(got->rows.size(), 8u);
  EXPECT_EQ(got->requests, 1);
  for (std::uint32_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(got->complete_row(i - 1, 6));
    const auto& cells = got->rows[i - 1].cells;
    EXPECT_EQ(std::get<Counter32>(cells[0]).value, i * 100);
    EXPECT_EQ(std::get<Counter32>(cells[1]).value, i * 200);
    EXPECT_EQ(std::get<Counter32>(cells[5]).value, 1u);
  }
}

TEST_F(TableFixture, LargeTableChainsTruncatedResponses) {
  deploy(100);  // 600 cells, well past the agent's 128-varbind cap
  TablePoller poller(*client, target->ip(), "public", counter_columns());
  std::optional<TableResult> got;
  poller.collect([&](TableResult r) { got = std::move(r); });
  sim.run_until(seconds(5));

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok) << got->error;
  ASSERT_EQ(got->rows.size(), 100u);
  for (std::uint32_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(got->complete_row(i - 1, 6)) << "row " << i;
  }
  // 600 cells at <=120 repeater varbinds per sweep: at least 5 requests,
  // and chaining should not blow past a small multiple of that.
  EXPECT_GE(got->requests, 5);
  EXPECT_LE(got->requests, 10);
}

TEST_F(TableFixture, UnreachableAgentFails) {
  deploy(4);
  TablePoller poller(*client, sim::Ipv4Address::parse("10.0.0.99"),
                     "public", counter_columns());
  std::optional<TableResult> got;
  poller.collect([&](TableResult r) { got = std::move(r); });
  sim.run_until(seconds(30));
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok);
  EXPECT_FALSE(poller.busy());
}

TEST_F(TableFixture, RejectsConcurrentCollections) {
  deploy(4);
  TablePoller poller(*client, target->ip(), "public", counter_columns());
  poller.collect([](TableResult) {});
  EXPECT_THROW(poller.collect([](TableResult) {}), std::logic_error);
  sim.run_until(seconds(2));
  EXPECT_FALSE(poller.busy());
}

// Satellite regression: a 1k-row ifDescr walk with the ifNumber prefetch
// reserves once and spends exactly 1 + ceil(rows / bulk) round trips.
TEST_F(TableFixture, ThousandRowWalkPrefetchesAndReserves) {
  deploy(1000);
  const std::size_t bulk = 64;
  SubtreeWalker walker(*client, bulk);
  walker.set_prefetch_if_number(true);

  const auto requests_before = client->stats().requests_sent;
  std::optional<WalkResult> got;
  walker.walk(target->ip(), "public",
              mib2::kIfEntry.child(mib2::kIfDescrColumn),
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(10));

  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok) << got->error;
  ASSERT_EQ(got->varbinds.size(), 1000u);
  EXPECT_EQ(std::get<std::string>(got->varbinds[0].value), "if1");
  EXPECT_EQ(std::get<std::string>(got->varbinds[999].value), "if1000");
  // 1 ifNumber prefetch + ceil(1000/64) = 16 sweeps (the last, partial
  // sweep overshoots into the next column and ends the walk). No retries
  // on a clean link.
  const auto spent = client->stats().requests_sent - requests_before;
  EXPECT_EQ(spent, 1u + (1000 + bulk - 1) / bulk);
}

TEST_F(TableFixture, WalkWithoutPrefetchSpendsNoExtraRequest) {
  deploy(64);
  SubtreeWalker walker(*client, 64);
  const auto before = client->stats().requests_sent;
  std::optional<WalkResult> got;
  walker.walk(target->ip(), "public",
              mib2::kIfEntry.child(mib2::kIfDescrColumn),
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(5));
  ASSERT_TRUE(got.has_value() && got->ok);
  EXPECT_EQ(got->varbinds.size(), 64u);
  // One full sweep + one that walks off the column's end.
  EXPECT_EQ(client->stats().requests_sent - before, 2u);
}

}  // namespace
}  // namespace netqos::snmp
