#include "snmp/mib.h"

#include <gtest/gtest.h>

namespace netqos::snmp {
namespace {

TEST(MibTree, GetReturnsRegisteredValue) {
  MibTree mib;
  mib.register_constant(Oid({1, 3, 6, 1}), std::int64_t{42});
  const auto value = mib.get(Oid({1, 3, 6, 1}));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, SnmpValue(std::int64_t{42}));
}

TEST(MibTree, GetMissingReturnsNullopt) {
  MibTree mib;
  EXPECT_FALSE(mib.get(Oid({1, 2, 3})).has_value());
}

TEST(MibTree, ProviderEvaluatedAtQueryTime) {
  MibTree mib;
  int counter = 0;
  mib.register_object(Oid({1}), [&counter] {
    return SnmpValue(std::int64_t{++counter});
  });
  EXPECT_EQ(*mib.get(Oid({1})), SnmpValue(std::int64_t{1}));
  EXPECT_EQ(*mib.get(Oid({1})), SnmpValue(std::int64_t{2}));
}

TEST(MibTree, RegistrationReplaces) {
  MibTree mib;
  mib.register_constant(Oid({1}), std::int64_t{1});
  mib.register_constant(Oid({1}), std::int64_t{2});
  EXPECT_EQ(*mib.get(Oid({1})), SnmpValue(std::int64_t{2}));
  EXPECT_EQ(mib.size(), 1u);
}

TEST(MibTree, UnregisterRemoves) {
  MibTree mib;
  mib.register_constant(Oid({1}), std::int64_t{1});
  mib.unregister_object(Oid({1}));
  EXPECT_FALSE(mib.get(Oid({1})).has_value());
}

TEST(MibTree, GetNextWalksLexicographically) {
  MibTree mib;
  mib.register_constant(Oid({1, 1}), std::int64_t{11});
  mib.register_constant(Oid({1, 2}), std::int64_t{12});
  mib.register_constant(Oid({2, 1}), std::int64_t{21});

  auto next = mib.get_next(Oid({1}));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->first, Oid({1, 1}));

  next = mib.get_next(Oid({1, 1}));
  EXPECT_EQ(next->first, Oid({1, 2}));

  next = mib.get_next(Oid({1, 2}));
  EXPECT_EQ(next->first, Oid({2, 1}));

  EXPECT_FALSE(mib.get_next(Oid({2, 1})).has_value());
}

TEST(MibTree, GetNextFromEmptyOidStartsAtFirst) {
  MibTree mib;
  mib.register_constant(Oid({1, 3}), std::int64_t{1});
  const auto next = mib.get_next(Oid{});
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->first, Oid({1, 3}));
}

TEST(MibTree, UnregisterSubtreeRemovesOnlySubtree) {
  MibTree mib;
  mib.register_constant(Oid({1, 7, 1}), std::int64_t{1});
  mib.register_constant(Oid({1, 7, 2}), std::int64_t{2});
  mib.register_constant(Oid({1, 8}), std::int64_t{3});
  mib.unregister_subtree(Oid({1, 7}));
  EXPECT_EQ(mib.size(), 1u);
  EXPECT_TRUE(mib.get(Oid({1, 8})).has_value());
}

TEST(MibTree, RefreshHookRunsBeforeLookups) {
  MibTree mib;
  int runs = 0;
  mib.add_refresh_hook([&runs](MibTree& tree) {
    ++runs;
    tree.register_constant(Oid({9, 9}), std::int64_t{runs});
  });
  EXPECT_EQ(*mib.get(Oid({9, 9})), SnmpValue(std::int64_t{1}));
  EXPECT_EQ(runs, 1);
  mib.get_next(Oid({9}));
  EXPECT_EQ(runs, 2);
}

TEST(MibTree, HooksDoNotRecurse) {
  MibTree mib;
  int runs = 0;
  mib.add_refresh_hook([&runs](MibTree& tree) {
    ++runs;
    // A hook that itself queries the tree must not re-trigger hooks.
    tree.get(Oid({1}));
  });
  mib.get(Oid({1}));
  EXPECT_EQ(runs, 1);
}

}  // namespace
}  // namespace netqos::snmp
