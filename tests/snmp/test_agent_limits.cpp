// Agent resource guards and remaining odd paths.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/simulator.h"
#include "snmp/agent.h"
#include "snmp/client.h"
#include "snmp/mib2.h"
#include "snmp/walker.h"
#include "spec/parser.h"
#include "spec/testbed.h"

namespace netqos::snmp {
namespace {

class LimitsFixture : public ::testing::Test {
 protected:
  LimitsFixture() : net(sim) {
    manager = &net.add_host("manager");
    target = &net.add_host("target");
    net.add_host_interface(*manager, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.1"));
    net.add_host_interface(*target, "eth0", mbps(100),
                           sim::Ipv4Address::parse("10.0.0.2"));
    net.connect(*manager, "eth0", *target, "eth0");

    AgentConfig config;
    config.hiccup_probability = 0.0;
    config.max_response_varbinds = 8;
    agent = std::make_unique<SnmpAgent>(sim, target->udp(), config);
    register_system_group(agent->mib(), sim, "target");
    // 30 scalars under a private subtree so bulk walks have material.
    for (std::uint32_t i = 1; i <= 30; ++i) {
      agent->mib().register_constant(Oid({1, 3, 6, 1, 4, 1, 7, i}),
                                     static_cast<std::int64_t>(i));
    }
    client = std::make_unique<SnmpClient>(sim, manager->udp());
  }

  sim::Simulator sim;
  sim::Network net;
  sim::Host* manager = nullptr;
  sim::Host* target = nullptr;
  std::unique_ptr<SnmpAgent> agent;
  std::unique_ptr<SnmpClient> client;
};

TEST_F(LimitsFixture, GetBulkTruncatedAtResponseLimit) {
  std::optional<SnmpResult> got;
  client->get_bulk(target->ip(), "public", {Oid({1, 3, 6, 1, 4, 1, 7})}, 0,
                   25, [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value() && got->ok());
  // The agent caps at 8 varbinds instead of the requested 25.
  EXPECT_EQ(got->varbinds.size(), 8u);
}

TEST_F(LimitsFixture, GetBulkNegativeFieldsTolerated) {
  std::optional<SnmpResult> got;
  client->get_bulk(target->ip(), "public", {Oid({1, 3, 6, 1, 4, 1, 7})},
                   -3, -7, [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value() && got->ok());
  EXPECT_TRUE(got->varbinds.empty());  // zero repetitions requested
}

TEST_F(LimitsFixture, GetBulkOnV1AgentAnswersGenErr) {
  // Our agent rejects GETBULK inside a v1 message (it is v2c-only).
  ClientConfig config;
  config.version = SnmpVersion::kV1;
  SnmpClient v1(sim, manager->udp(), config);
  std::optional<SnmpResult> got;
  v1.get_bulk(target->ip(), "public", {Oid({1, 3, 6, 1, 4, 1, 7})}, 0, 5,
              [&](SnmpResult r) { got = std::move(r); });
  sim.run_until(seconds(1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, SnmpResult::Status::kErrorResponse);
  EXPECT_EQ(got->error_status, ErrorStatus::kGenErr);
}

TEST_F(LimitsFixture, WalkOverV1ClientUsesGetNext) {
  ClientConfig config;
  config.version = SnmpVersion::kV1;
  SnmpClient v1(sim, manager->udp(), config);
  SubtreeWalker walker(v1);
  std::optional<WalkResult> got;
  walker.walk(target->ip(), "public", Oid({1, 3, 6, 1, 4, 1, 7}),
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok);
  EXPECT_EQ(got->varbinds.size(), 30u);
}

TEST_F(LimitsFixture, WalkPastEndOfMibOverV1EndsCleanly) {
  ClientConfig config;
  config.version = SnmpVersion::kV1;
  SnmpClient v1(sim, manager->udp(), config);
  SubtreeWalker walker(v1);
  std::optional<WalkResult> got;
  // The private subtree is the LAST thing in the MIB: the walk must end
  // on v1's noSuchName instead of failing.
  walker.walk(target->ip(), "public", Oid({1, 3, 6, 1, 4}),
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok);
}

TEST(SpecFileIo, ParseSpecFileFromDisk) {
  const std::string path = "/tmp/netqos_test_spec.txt";
  {
    std::ofstream out(path);
    out << spec::lirtss_spec_text();
  }
  const spec::SpecFile file = spec::parse_spec_file(path);
  EXPECT_EQ(file.network_name, "lirtss");
  EXPECT_EQ(file.topology.nodes().size(), 11u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace netqos::snmp
