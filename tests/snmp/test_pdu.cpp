#include "snmp/pdu.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "snmp/ber.h"

namespace netqos::snmp {
namespace {

Message round_trip(const Message& message) {
  return decode_message(encode_message(message));
}

TEST(PduCodec, GetRequestRoundTrip) {
  Message msg;
  msg.version = SnmpVersion::kV2c;
  msg.community = "public";
  msg.pdu.type = PduType::kGetRequest;
  msg.pdu.request_id = 1234;
  msg.pdu.varbinds.push_back({mib2::kSysUpTime.child(0), Null{}});

  const Message back = round_trip(msg);
  EXPECT_EQ(back.version, SnmpVersion::kV2c);
  EXPECT_EQ(back.community, "public");
  EXPECT_EQ(back.pdu.type, PduType::kGetRequest);
  EXPECT_EQ(back.pdu.request_id, 1234);
  ASSERT_EQ(back.pdu.varbinds.size(), 1u);
  EXPECT_EQ(back.pdu.varbinds[0].oid, mib2::kSysUpTime.child(0));
  EXPECT_EQ(back.pdu.varbinds[0].value, SnmpValue(Null{}));
}

TEST(PduCodec, ResponseWithMixedValues) {
  Message msg;
  msg.pdu.type = PduType::kGetResponse;
  msg.pdu.request_id = -5;  // negative ids survive
  msg.pdu.varbinds = {
      {Oid({1, 3, 6, 1}), SnmpValue(Counter32{999})},
      {Oid({1, 3, 6, 2}), SnmpValue(std::string("eth0"))},
      {Oid({1, 3, 6, 3}), SnmpValue(TimeTicks{100})},
      {Oid({1, 3, 6, 4}), SnmpValue(Gauge32{100'000'000})},
      {Oid({1, 3, 6, 5}), SnmpValue(std::int64_t{-42})},
      {Oid({1, 3, 6, 6}), SnmpValue(VarBindException::kNoSuchInstance)},
  };
  const Message back = round_trip(msg);
  EXPECT_EQ(back.pdu.request_id, -5);
  ASSERT_EQ(back.pdu.varbinds.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(back.pdu.varbinds[i], msg.pdu.varbinds[i]) << "varbind " << i;
  }
}

TEST(PduCodec, ErrorStatusSurvives) {
  Message msg;
  msg.pdu.type = PduType::kGetResponse;
  msg.pdu.error_status = ErrorStatus::kNoSuchName;
  msg.pdu.error_index = 2;
  const Message back = round_trip(msg);
  EXPECT_EQ(back.pdu.error_status, ErrorStatus::kNoSuchName);
  EXPECT_EQ(back.pdu.error_index, 2);
}

TEST(PduCodec, GetBulkFieldsReuseErrorSlots) {
  Message msg;
  msg.version = SnmpVersion::kV2c;
  msg.pdu.type = PduType::kGetBulkRequest;
  msg.pdu.error_status = static_cast<ErrorStatus>(1);  // non-repeaters
  msg.pdu.error_index = 20;                            // max-repetitions
  const Message back = round_trip(msg);
  EXPECT_EQ(back.pdu.non_repeaters(), 1);
  EXPECT_EQ(back.pdu.max_repetitions(), 20);
}

TEST(PduCodec, EmptyVarbindListAllowed) {
  Message msg;
  msg.pdu.type = PduType::kGetRequest;
  const Message back = round_trip(msg);
  EXPECT_TRUE(back.pdu.varbinds.empty());
}

TEST(PduCodec, V1VersionPreserved) {
  Message msg;
  msg.version = SnmpVersion::kV1;
  EXPECT_EQ(round_trip(msg).version, SnmpVersion::kV1);
}

TEST(PduCodec, CommunityStringPreserved) {
  Message msg;
  msg.community = "s3cret-community";
  EXPECT_EQ(round_trip(msg).community, "s3cret-community");
}

TEST(PduCodec, RejectsGarbage) {
  EXPECT_THROW(decode_message({0xff, 0x00, 0x01}), BerError);
  EXPECT_THROW(decode_message({}), BufferUnderflow);
}

TEST(PduCodec, RejectsUnsupportedVersion) {
  Message msg;
  msg.version = static_cast<SnmpVersion>(3);
  EXPECT_THROW(decode_message(encode_message(msg)), BerError);
}

TEST(PduCodec, RejectsNonPduTag) {
  // A message whose "PDU" is a bare integer.
  ByteWriter inner;
  ber::write_integer(inner, 1);                 // version
  ber::write_octet_string(inner, "public");     // community
  ber::write_integer(inner, 7);                 // bogus: not a PDU
  ByteWriter out;
  ber::write_wrapped(out, ber::kTagSequence, inner.bytes());
  EXPECT_THROW(decode_message(out.bytes()), BerError);
}

TEST(PduCodec, ErrorStatusNames) {
  EXPECT_STREQ(error_status_name(ErrorStatus::kNoError), "noError");
  EXPECT_STREQ(error_status_name(ErrorStatus::kTooBig), "tooBig");
  EXPECT_STREQ(error_status_name(ErrorStatus::kGenErr), "genErr");
}

/// Property: arbitrary randomized messages survive the codec.
class PduFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PduFuzzRoundTrip, RandomMessages) {
  netqos::Xoshiro256 rng(GetParam());
  const PduType types[] = {PduType::kGetRequest, PduType::kGetNextRequest,
                           PduType::kGetResponse, PduType::kSetRequest,
                           PduType::kGetBulkRequest};
  for (int iter = 0; iter < 100; ++iter) {
    Message msg;
    msg.version = rng.uniform() < 0.5 ? SnmpVersion::kV1 : SnmpVersion::kV2c;
    msg.community = std::string(rng.uniform_int(0, 20), 'c');
    msg.pdu.type = types[rng.uniform_int(0, 4)];
    msg.pdu.request_id = static_cast<std::int32_t>(rng.next());
    msg.pdu.error_status =
        static_cast<ErrorStatus>(rng.uniform_int(0, 5));
    msg.pdu.error_index = static_cast<std::int32_t>(rng.uniform_int(0, 100));
    const std::size_t nvb = rng.uniform_int(0, 8);
    for (std::size_t i = 0; i < nvb; ++i) {
      VarBind vb;
      vb.oid = Oid({1, 3, static_cast<std::uint32_t>(rng.uniform_int(0, 99)),
                    static_cast<std::uint32_t>(rng.next())});
      switch (rng.uniform_int(0, 4)) {
        case 0: vb.value = Null{}; break;
        case 1: vb.value = static_cast<std::int64_t>(rng.next()); break;
        case 2: vb.value = Counter32{static_cast<std::uint32_t>(rng.next())};
                break;
        case 3: vb.value = std::string(rng.uniform_int(0, 50), 's'); break;
        case 4: vb.value = TimeTicks{static_cast<std::uint32_t>(rng.next())};
                break;
      }
      msg.pdu.varbinds.push_back(std::move(vb));
    }
    const Message back = round_trip(msg);
    EXPECT_EQ(back.version, msg.version);
    EXPECT_EQ(back.community, msg.community);
    EXPECT_EQ(back.pdu.type, msg.pdu.type);
    EXPECT_EQ(back.pdu.request_id, msg.pdu.request_id);
    ASSERT_EQ(back.pdu.varbinds.size(), msg.pdu.varbinds.size());
    for (std::size_t i = 0; i < msg.pdu.varbinds.size(); ++i) {
      EXPECT_EQ(back.pdu.varbinds[i], msg.pdu.varbinds[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PduFuzzRoundTrip,
                         ::testing::Values(3u, 99u, 0xabcdefu));

}  // namespace
}  // namespace netqos::snmp
