// Mib2IfTable semantics (incl. the agent-side cache artifact), subtree
// walking, bridge MIB, and agent deployment.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/simulator.h"
#include "snmp/bridge.h"
#include "snmp/client.h"
#include "snmp/deploy.h"
#include "snmp/walker.h"
#include "spec/testbed.h"

namespace netqos::snmp {
namespace {

TEST(Mib2IfTable, ServesLiveCountersWithoutCache) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& h = net.add_host("h");
  net.add_host_interface(h, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));

  MibTree mib;
  Mib2IfTable table(mib, sim, {h.find_interface("eth0")},
                    IfTableConfig{.cached = false});
  EXPECT_EQ(*mib.get(mib2::kIfNumber.child(0)), SnmpValue(std::int64_t{1}));
  EXPECT_EQ(as_counter32(*mib.get(
                mib2::if_column(mib2::kIfInOctetsColumn, 1))),
            0u);

  // Mutate the live counters directly: visible immediately (no cache).
  // Use deliver() with a crafted frame addressed to the NIC.
  sim::EthernetFrame frame;
  frame.dst = h.find_interface("eth0")->mac();
  frame.ip.udp.padding = 100;
  h.find_interface("eth0")->deliver(sim::make_frame(frame));
  EXPECT_GT(as_counter32(*mib.get(
                mib2::if_column(mib2::kIfInOctetsColumn, 1))),
            0u);
  EXPECT_EQ(table.refreshes(), 0u);
}

TEST(Mib2IfTable, CacheServesStaleSnapshotUntilInterval) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& h = net.add_host("h");
  net.add_host_interface(h, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));
  sim::Nic* nic = h.find_interface("eth0");

  MibTree mib;
  Mib2IfTable table(mib, sim, {nic}, IfTableConfig{.cached = true});
  const Oid oid = mib2::if_column(mib2::kIfInOctetsColumn, 1);

  // The construction snapshot (t=0) saw counter 0.
  EXPECT_EQ(as_counter32(*mib.get(oid)), 0u);
  EXPECT_EQ(table.refreshes(), 1u);

  // Traffic arrives; the query above armed an async refresh, but until
  // it completes the agent still reports the stale snapshot.
  sim::EthernetFrame frame;
  frame.dst = nic->mac();
  frame.ip.udp.padding = 500;
  nic->deliver(sim::make_frame(frame));
  EXPECT_EQ(as_counter32(*mib.get(oid)), 0u)
      << "bytes must be counted in a LATER message (paper §4.3.1)";

  // Once the post-query refresh lands, the bytes appear.
  sim.run_until(seconds(1));
  EXPECT_GT(as_counter32(*mib.get(oid)), 0u);
  EXPECT_EQ(table.refreshes(), 2u);
}

TEST(Mib2IfTable, OneRefreshPerQueryBurst) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& h = net.add_host("h");
  net.add_host_interface(h, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));
  MibTree mib;
  Mib2IfTable table(mib, sim, {h.find_interface("eth0")},
                    IfTableConfig{.cached = true});
  const Oid oid = mib2::if_column(mib2::kIfInOctetsColumn, 1);
  // A burst of queries (one poll PDU touches many columns) arms exactly
  // one refresh.
  for (int i = 0; i < 10; ++i) mib.get(oid);
  sim.run_until(seconds(1));
  EXPECT_EQ(table.refreshes(), 2u);  // construction + one async
}

TEST(Mib2IfTable, IndexOfMapsNics) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& h = net.add_host("h");
  net.add_host_interface(h, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));
  net.add_host_interface(h, "eth1", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.2"));
  MibTree mib;
  Mib2IfTable table(mib, sim,
                    {h.find_interface("eth0"), h.find_interface("eth1")});
  EXPECT_EQ(table.index_of(*h.find_interface("eth0")), 1u);
  EXPECT_EQ(table.index_of(*h.find_interface("eth1")), 2u);
  EXPECT_EQ(table.interface_count(), 2u);
}

TEST(Mib2IfTable, PhysAddressServed) {
  sim::Simulator sim;
  sim::Network net(sim);
  sim::Host& h = net.add_host("h");
  net.add_host_interface(h, "eth0", mbps(100),
                         sim::Ipv4Address::parse("10.0.0.1"));
  MibTree mib;
  Mib2IfTable table(mib, sim, {h.find_interface("eth0")});
  const auto value = mib.get(mib2::if_column(mib2::kIfPhysAddressColumn, 1));
  ASSERT_TRUE(value.has_value());
  const auto& raw = std::get<std::string>(*value);
  ASSERT_EQ(raw.size(), 6u);
  const auto mac = h.find_interface("eth0")->mac().octets();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(static_cast<std::uint8_t>(raw[i]), mac[i]);
  }
}

/// Full LIRTSS deployment for walker/bridge tests.
class DeployedFixture : public ::testing::Test {
 protected:
  DeployedFixture() : specfile(spec::lirtss_testbed()) {
    net = sim::build_network(sim, specfile.topology);
    DeployOptions options;
    options.agent.hiccup_probability = 0.0;
    agents = deploy_agents(sim, *net, specfile.topology, options);
    client = std::make_unique<SnmpClient>(
        sim, net->find_host("L")->udp());
  }

  spec::SpecFile specfile;
  sim::Simulator sim;
  std::unique_ptr<sim::Network> net;
  std::vector<DeployedAgent> agents;
  std::unique_ptr<SnmpClient> client;
};

TEST_F(DeployedFixture, DeploysExactlyDeclaredAgents) {
  // L, S1, S2, N1, N2, sw0.
  EXPECT_EQ(agents.size(), 6u);
  EXPECT_NE(find_agent(agents, "sw0"), nullptr);
  EXPECT_NE(find_agent(agents, "N2"), nullptr);
  EXPECT_EQ(find_agent(agents, "S3"), nullptr);  // no daemon by spec
  EXPECT_EQ(find_agent(agents, "missing"), nullptr);
}

TEST_F(DeployedFixture, WalkIfDescrOnSwitch) {
  std::optional<WalkResult> got;
  SubtreeWalker walker(*client);
  walker.walk(sim::Ipv4Address::parse("10.0.0.100"), "public",
              mib2::kIfEntry.child(mib2::kIfDescrColumn),
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(5));
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok);
  ASSERT_EQ(got->varbinds.size(), 8u);  // p1..p8
  EXPECT_EQ(std::get<std::string>(got->varbinds[0].value), "p1");
  EXPECT_EQ(std::get<std::string>(got->varbinds[7].value), "p8");
}

TEST_F(DeployedFixture, WalkUnreachableAgentReportsTimeout) {
  std::optional<WalkResult> got;
  SubtreeWalker walker(*client);
  walker.walk(sim::Ipv4Address::parse("10.0.0.13"),  // S3: no agent
              "public", mib2::kIfEntry,
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(30));
  ASSERT_TRUE(got.has_value());
  EXPECT_FALSE(got->ok);
  EXPECT_EQ(got->error, "timeout");
}

TEST_F(DeployedFixture, WalkerRejectsConcurrentWalks) {
  SubtreeWalker walker(*client);
  walker.walk(sim::Ipv4Address::parse("10.0.0.100"), "public",
              mib2::kIfEntry, [](WalkResult) {});
  EXPECT_TRUE(walker.busy());
  EXPECT_THROW(walker.walk(sim::Ipv4Address::parse("10.0.0.100"), "public",
                           mib2::kIfEntry, [](WalkResult) {}),
               std::logic_error);
  sim.run_until(seconds(5));
  EXPECT_FALSE(walker.busy());
}

TEST_F(DeployedFixture, BridgeMibExposesLearnedMacs) {
  // Traffic teaches the switch where hosts live.
  sim::Host* l = net->find_host("L");
  sim::Host* s1 = net->find_host("S1");
  s1->udp().bind(9, [](const sim::Ipv4Packet&) {});
  const auto sport = l->udp().allocate_ephemeral_port();
  l->udp().send(s1->ip(), 9, sport, {}, 10);
  sim.run_until(seconds(1));

  std::optional<WalkResult> got;
  SubtreeWalker walker(*client);
  walker.walk(sim::Ipv4Address::parse("10.0.0.100"), "public",
              mib2::kDot1dTpFdbPort,
              [&](WalkResult r) { got = std::move(r); });
  sim.run_until(seconds(5));
  ASSERT_TRUE(got.has_value() && got->ok);
  // At least L's MAC learned on port p1 (index 1).
  bool found_l_on_p1 = false;
  const auto l_mac = l->find_interface("eth0")->mac();
  for (const auto& vb : got->varbinds) {
    if (vb.oid == fdb_instance(l_mac)) {
      found_l_on_p1 = std::get<std::int64_t>(vb.value) == 1;
    }
  }
  EXPECT_TRUE(found_l_on_p1);
}

TEST(DeployErrors, SnmpOnHubRejected) {
  auto specfile = spec::lirtss_testbed();
  // Corrupt the spec: demand SNMP on the hub.
  topo::NetworkTopology hacked;
  for (auto node : specfile.topology.nodes()) {
    if (node.kind == topo::NodeKind::kHub) node.snmp_enabled = true;
    hacked.add_node(node);
  }
  for (const auto& conn : specfile.topology.connections()) {
    hacked.add_connection(conn);
  }
  sim::Simulator sim;
  auto net = sim::build_network(sim, hacked);
  EXPECT_THROW(deploy_agents(sim, *net, hacked), std::invalid_argument);
}

}  // namespace
}  // namespace netqos::snmp
