#include "snmp/ber.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace netqos::snmp {
namespace {

Bytes encode_value(const SnmpValue& value) {
  ByteWriter w;
  ber::write_value(w, value);
  return std::move(w).take();
}

SnmpValue decode_value(const Bytes& wire) {
  ByteReader r(wire);
  return ber::read_value(r);
}

TEST(Ber, IntegerKnownEncodings) {
  // RFC-style minimal two's-complement encodings.
  struct Case {
    std::int64_t value;
    Bytes wire;
  };
  const Case cases[] = {
      {0, {0x02, 0x01, 0x00}},
      {1, {0x02, 0x01, 0x01}},
      {127, {0x02, 0x01, 0x7f}},
      {128, {0x02, 0x02, 0x00, 0x80}},  // needs a leading zero
      {256, {0x02, 0x02, 0x01, 0x00}},
      {-1, {0x02, 0x01, 0xff}},
      {-128, {0x02, 0x01, 0x80}},
      {-129, {0x02, 0x02, 0xff, 0x7f}},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(encode_value(SnmpValue(c.value)), c.wire)
        << "value " << c.value;
    EXPECT_EQ(decode_value(c.wire), SnmpValue(c.value));
  }
}

TEST(Ber, NullEncoding) {
  EXPECT_EQ(encode_value(Null{}), (Bytes{0x05, 0x00}));
  EXPECT_EQ(decode_value({0x05, 0x00}), SnmpValue(Null{}));
}

TEST(Ber, OctetStringEncoding) {
  const Bytes wire{0x04, 0x05, 'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(encode_value(std::string("hello")), wire);
  EXPECT_EQ(decode_value(wire), SnmpValue(std::string("hello")));
}

TEST(Ber, LongFormLength) {
  // A 200-byte string needs the 0x81 long length form.
  const std::string big(200, 'x');
  const Bytes wire = encode_value(big);
  EXPECT_EQ(wire[0], 0x04);
  EXPECT_EQ(wire[1], 0x81);
  EXPECT_EQ(wire[2], 200);
  EXPECT_EQ(decode_value(wire), SnmpValue(big));
}

TEST(Ber, VeryLongFormLength) {
  const std::string big(60'000, 'y');
  const Bytes wire = encode_value(big);
  EXPECT_EQ(wire[1], 0x82);  // two length octets
  EXPECT_EQ(decode_value(wire), SnmpValue(big));

  const std::string bigger(70'000, 'z');  // > 65535: three length octets
  const Bytes wire3 = encode_value(bigger);
  EXPECT_EQ(wire3[1], 0x83);
  EXPECT_EQ(decode_value(wire3), SnmpValue(bigger));
}

TEST(Ber, OidKnownEncoding) {
  // 1.3.6.1.2.1 -> 2b 06 01 02 01 (first two arcs pack to 43 = 0x2b).
  const Bytes wire{0x06, 0x05, 0x2b, 0x06, 0x01, 0x02, 0x01};
  EXPECT_EQ(encode_value(Oid({1, 3, 6, 1, 2, 1})), wire);
  EXPECT_EQ(decode_value(wire), SnmpValue(Oid({1, 3, 6, 1, 2, 1})));
}

TEST(Ber, OidMultiByteArc) {
  // Arc 840 = 0x348 -> base-128: 0x86 0x48.
  const Oid oid({1, 2, 840});
  const Bytes wire = encode_value(oid);
  const Bytes expected{0x06, 0x03, 0x2a, 0x86, 0x48};
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(decode_value(wire), SnmpValue(oid));
}

TEST(Ber, OidWithLargeFirstPair) {
  // 2.100 packs as 2*40+100 = 180 (> 127, multi-byte).
  const Oid oid({2, 100, 3});
  EXPECT_EQ(decode_value(encode_value(oid)), SnmpValue(oid));
}

TEST(Ber, SingleArcOidRejected) {
  ByteWriter w;
  EXPECT_THROW(ber::write_oid(w, Oid({1})), BerError);
}

TEST(Ber, Counter32Encoding) {
  const Bytes wire = encode_value(Counter32{0xdeadbeef});
  EXPECT_EQ(wire[0], 0x41);
  EXPECT_EQ(decode_value(wire), SnmpValue(Counter32{0xdeadbeef}));
}

TEST(Ber, Counter32HighBitNeedsLeadingZero) {
  const Bytes wire = encode_value(Counter32{0x80000000u});
  EXPECT_EQ(wire[1], 5);     // length 5: leading 0x00
  EXPECT_EQ(wire[2], 0x00);
  EXPECT_EQ(decode_value(wire), SnmpValue(Counter32{0x80000000u}));
}

TEST(Ber, TimeTicksAndGauge) {
  EXPECT_EQ(decode_value(encode_value(TimeTicks{123456})),
            SnmpValue(TimeTicks{123456}));
  EXPECT_EQ(decode_value(encode_value(Gauge32{100'000'000})),
            SnmpValue(Gauge32{100'000'000}));
}

TEST(Ber, Counter64RoundTrip) {
  const Counter64 big{0xffffffffffffffffULL};
  EXPECT_EQ(decode_value(encode_value(big)), SnmpValue(big));
}

TEST(Ber, IpAddressEncoding) {
  const Bytes wire = encode_value(IpAddressValue{0x0a000001});
  EXPECT_EQ(wire[0], 0x40);
  EXPECT_EQ(wire[1], 4);
  EXPECT_EQ(decode_value(wire), SnmpValue(IpAddressValue{0x0a000001}));
}

TEST(Ber, ExceptionMarkers) {
  for (auto e : {VarBindException::kNoSuchObject,
                 VarBindException::kNoSuchInstance,
                 VarBindException::kEndOfMibView}) {
    const Bytes wire = encode_value(e);
    EXPECT_EQ(wire.size(), 2u);
    EXPECT_EQ(decode_value(wire), SnmpValue(e));
  }
}

TEST(Ber, DecodeRejectsUnknownTag) {
  EXPECT_THROW(decode_value({0x1f, 0x00}), BerError);
}

TEST(Ber, DecodeRejectsTruncatedLength) {
  EXPECT_THROW(decode_value({0x02, 0x05, 0x01}), BerError);
}

TEST(Ber, DecodeRejectsOversizeInteger) {
  Bytes wire{0x02, 0x09};
  for (int i = 0; i < 9; ++i) wire.push_back(0x01);
  EXPECT_THROW(decode_value(wire), BerError);
}

TEST(Ber, DecodeRejectsBadIpAddressLength) {
  EXPECT_THROW(decode_value({0x40, 0x03, 1, 2, 3}), BerError);
}

TEST(Ber, DecodeRejectsTruncatedOidArc) {
  // Continuation bit set on the last byte.
  EXPECT_THROW(decode_value({0x06, 0x02, 0x2b, 0x86}), BerError);
}

TEST(Ber, ExpectHeaderMismatchThrows) {
  const Bytes wire{0x02, 0x01, 0x05};
  ByteReader r(wire);
  EXPECT_THROW(ber::expect_header(r, ber::kTagOctetString), BerError);
}

// ---- property-style randomized round trips -----------------------------

class BerIntegerRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BerIntegerRoundTrip, SignedRandomValues) {
  netqos::Xoshiro256 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    // Bias towards interesting magnitudes: shift by a random amount.
    const int shift = static_cast<int>(rng.uniform_int(0, 62));
    const auto value =
        static_cast<std::int64_t>(rng.next()) >> shift;
    EXPECT_EQ(decode_value(encode_value(value)), SnmpValue(value));
  }
}

TEST_P(BerIntegerRoundTrip, UnsignedCounters) {
  netqos::Xoshiro256 rng(GetParam() ^ 0x5a5a);
  for (int i = 0; i < 500; ++i) {
    const auto v32 = static_cast<std::uint32_t>(rng.next());
    EXPECT_EQ(decode_value(encode_value(Counter32{v32})),
              SnmpValue(Counter32{v32}));
    const std::uint64_t v64 = rng.next();
    EXPECT_EQ(decode_value(encode_value(Counter64{v64})),
              SnmpValue(Counter64{v64}));
  }
}

TEST_P(BerIntegerRoundTrip, RandomOids) {
  netqos::Xoshiro256 rng(GetParam() ^ 0xc3c3);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint32_t> arcs{
        static_cast<std::uint32_t>(rng.uniform_int(0, 2)),
        static_cast<std::uint32_t>(rng.uniform_int(0, 39))};
    const std::size_t extra = rng.uniform_int(0, 12);
    for (std::size_t k = 0; k < extra; ++k) {
      arcs.push_back(static_cast<std::uint32_t>(rng.next()));
    }
    const Oid oid(std::move(arcs));
    EXPECT_EQ(decode_value(encode_value(oid)), SnmpValue(oid));
  }
}

TEST_P(BerIntegerRoundTrip, RandomStrings) {
  netqos::Xoshiro256 rng(GetParam() ^ 0x9999);
  for (int i = 0; i < 100; ++i) {
    std::string s;
    const std::size_t length = rng.uniform_int(0, 300);
    for (std::size_t k = 0; k < length; ++k) {
      s += static_cast<char>(rng.uniform_int(0, 255));
    }
    EXPECT_EQ(decode_value(encode_value(s)), SnmpValue(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BerIntegerRoundTrip,
                         ::testing::Values(1u, 42u, 0xdeadu, 7777u));

}  // namespace
}  // namespace netqos::snmp
