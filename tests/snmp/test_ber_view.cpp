// Zero-copy BER views: decode_message_head / next_varbind must agree
// with the materializing decoder on every wire image the encoder can
// produce, and reject malformed input with the same exception pair.
#include "snmp/ber_view.h"

#include <gtest/gtest.h>

#include "snmp/pdu.h"

namespace netqos::snmp {
namespace {

Message poll_response() {
  Message m;
  m.version = SnmpVersion::kV2c;
  m.community = "public";
  m.pdu.type = PduType::kGetResponse;
  m.pdu.request_id = 0x1234;
  m.pdu.varbinds.push_back(
      {mib2::kSysUpTime.child(0), TimeTicks{123456}});
  m.pdu.varbinds.push_back(
      {mib2::if_column(mib2::kIfInOctetsColumn, 3), Counter32{987654}});
  m.pdu.varbinds.push_back(
      {mib2::ifx_column(mib2::kIfHCInOctetsColumn, 3),
       Counter64{0x1'0000'0001ULL}});
  m.pdu.varbinds.push_back(
      {mib2::if_column(mib2::kIfDescrColumn, 3), std::string("eth0")});
  m.pdu.varbinds.push_back(
      {mib2::if_column(mib2::kIfOutOctetsColumn, 99),
       VarBindException::kEndOfMibView});
  return m;
}

TEST(BerView, HeadMatchesMaterializingDecoder) {
  const Bytes wire = encode_message(poll_response());
  const Message full = decode_message(wire);
  const MessageHeadView head = decode_message_head(wire);

  EXPECT_EQ(head.version, full.version);
  EXPECT_EQ(head.community, full.community);
  EXPECT_EQ(head.pdu_tag, static_cast<std::uint8_t>(full.pdu.type));
  EXPECT_EQ(head.request_id, full.pdu.request_id);
  EXPECT_EQ(head.error_status, full.pdu.error_status);
  EXPECT_EQ(head.error_index, full.pdu.error_index);
}

TEST(BerView, VarbindIterationMatchesMaterializingDecoder) {
  const Message original = poll_response();
  const Bytes wire = encode_message(original);
  MessageHeadView head = decode_message_head(wire);

  std::size_t i = 0;
  VarBindView vb;
  while (next_varbind(head.varbinds, vb)) {
    ASSERT_LT(i, original.pdu.varbinds.size());
    EXPECT_EQ(vb.oid.to_oid(), original.pdu.varbinds[i].oid);
    EXPECT_EQ(vb.value.to_value(), original.pdu.varbinds[i].value);
    ++i;
  }
  EXPECT_EQ(i, original.pdu.varbinds.size());
}

TEST(BerView, DecodeVarbindsMaterializesWholeList) {
  const Message original = poll_response();
  const Bytes wire = encode_message(original);
  const MessageHeadView head = decode_message_head(wire);
  EXPECT_EQ(decode_varbinds(head.varbinds), original.pdu.varbinds);
}

TEST(BerView, OidViewPrefixRowAndCompare) {
  const Oid cell = mib2::if_column(mib2::kIfInOctetsColumn, 7);
  Message m = poll_response();
  m.pdu.varbinds = {{cell, Counter32{1}}};
  MessageHeadView head = decode_message_head(encode_message(m));
  VarBindView vb;
  ASSERT_TRUE(next_varbind(head.varbinds, vb));

  EXPECT_TRUE(vb.oid.starts_with(
      mib2::kIfEntry.child(mib2::kIfInOctetsColumn)));
  EXPECT_FALSE(vb.oid.starts_with(
      mib2::kIfEntry.child(mib2::kIfOutOctetsColumn)));
  EXPECT_EQ(vb.oid.last_arc(), 7u);
  EXPECT_EQ(vb.oid.arc_count(), cell.size());
  EXPECT_EQ(vb.oid.compare(cell), 0);
  EXPECT_LT(vb.oid.compare(mib2::if_column(mib2::kIfInOctetsColumn, 8)), 0);
  EXPECT_GT(vb.oid.compare(mib2::if_column(mib2::kIfInOctetsColumn, 6)), 0);
}

TEST(BerView, ValueViewTypedAccessors) {
  Message m = poll_response();
  MessageHeadView head = decode_message_head(encode_message(m));
  VarBindView vb;
  ASSERT_TRUE(next_varbind(head.varbinds, vb));  // TimeTicks
  EXPECT_EQ(vb.value.to_unsigned(), 123456u);
  ASSERT_TRUE(next_varbind(head.varbinds, vb));  // Counter32
  EXPECT_EQ(vb.value.to_unsigned(), 987654u);
  ASSERT_TRUE(next_varbind(head.varbinds, vb));  // Counter64
  EXPECT_EQ(vb.value.to_unsigned(), 0x1'0000'0001ULL);
  ASSERT_TRUE(next_varbind(head.varbinds, vb));  // OCTET STRING
  EXPECT_EQ(vb.value.to_text(), "eth0");
  EXPECT_THROW(vb.value.to_unsigned(), BerError);
  ASSERT_TRUE(next_varbind(head.varbinds, vb));  // endOfMibView
  EXPECT_TRUE(vb.value.is_exception());
  EXPECT_TRUE(vb.value.is_end_of_mib_view());
}

TEST(BerView, TruncatedWireThrowsUnderflow) {
  Bytes wire = encode_message(poll_response());
  bool threw = false;
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> clipped(wire.data(), cut);
    try {
      MessageHeadView head = decode_message_head(clipped);
      VarBindView vb;
      while (next_varbind(head.varbinds, vb)) {
        vb.value.to_value();
      }
    } catch (const BerError&) {
      threw = true;
    } catch (const BufferUnderflow&) {
      threw = true;
    }
  }
  // Every proper prefix must fail through the sanctioned exception pair
  // (nothing else escaped, or this test would have aborted).
  EXPECT_TRUE(threw);
}

TEST(BerView, GarbageThrowsBerError) {
  const Bytes junk = {0x42, 0xff, 0x00, 0x13, 0x37};
  EXPECT_THROW(decode_message_head(junk), BerError);
}

TEST(BerView, ViewsDoNotCopyTheWire) {
  const Bytes wire = encode_message(poll_response());
  MessageHeadView head = decode_message_head(wire);
  VarBindView vb;
  ASSERT_TRUE(next_varbind(head.varbinds, vb));
  // The views' spans alias the original datagram bytes.
  EXPECT_GE(vb.oid.content.data(), wire.data());
  EXPECT_LT(vb.oid.content.data(), wire.data() + wire.size());
  EXPECT_GE(vb.value.content.data(), wire.data());
}

}  // namespace
}  // namespace netqos::snmp
