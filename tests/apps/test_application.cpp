#include "apps/application.h"

#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/qos.h"
#include "netsim/link.h"

namespace netqos::apps {
namespace {

StreamSpec track_stream(SimDuration period = 50 * kMillisecond,
                        SimDuration deadline = 50 * kMillisecond) {
  StreamSpec spec;
  spec.name = "track";
  spec.producer = "sensor";
  spec.consumer = "tracker";
  spec.period = period;
  spec.message_bytes = 1024;
  spec.deadline = deadline;
  return spec;
}

TEST(ApplicationGroup, StreamsDeliverOnTime) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  group.deploy("tracker", bed.host("S2"));
  group.add_stream(track_stream());
  bed.run_until(seconds(10));
  group.stop();
  bed.run_until(seconds(11));  // drain the last in-flight message

  const StreamStats& stats = group.stream_stats("track");
  EXPECT_NEAR(static_cast<double>(stats.messages_sent), 199.0, 2.0);
  EXPECT_EQ(stats.messages_received, stats.messages_sent);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.loss_fraction(), 0.0);
  // Switched path: sub-millisecond latencies.
  EXPECT_LT(stats.latency.percentile(0.99), 0.001);
}

TEST(ApplicationGroup, CongestionCausesDeadlineMisses) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  group.deploy("tracker", bed.host("N1"));  // across the hub
  group.add_stream(track_stream());
  // Overload the hub.
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(2), seconds(20),
                                        kilobytes_per_second(1300)));
  bed.run_until(seconds(20));
  group.stop();

  const StreamStats& stats = group.stream_stats("track");
  EXPECT_GT(stats.deadline_misses, 20u);
}

TEST(ApplicationGroup, RelocationMovesTraffic) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  group.deploy("tracker", bed.host("N1"));
  group.add_stream(track_stream());
  bed.run_until(seconds(5));
  EXPECT_EQ(group.find("tracker")->host_name(), "N1");

  group.relocate("tracker", bed.host("S2"));
  EXPECT_EQ(group.find("tracker")->host_name(), "S2");
  const auto received_at_move =
      group.stream_stats("track").messages_received;
  bed.run_until(seconds(10));
  group.stop();

  // Messages keep flowing to the new location.
  EXPECT_GT(group.stream_stats("track").messages_received,
            received_at_move + 80);
  // The hub segment no longer carries stream traffic: N1's NIC counters
  // stop growing (modulo background).
  EXPECT_EQ(group.stream_stats("track").deadline_misses, 0u);
}

TEST(ApplicationGroup, RelocateToSameHostIsNoop) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("a", bed.host("S1"));
  group.relocate("a", bed.host("S1"));
  EXPECT_EQ(group.find("a")->host_name(), "S1");
}

TEST(ApplicationGroup, DuplicateNameRejected) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("a", bed.host("S1"));
  EXPECT_THROW(group.deploy("a", bed.host("S2")), std::invalid_argument);
}

TEST(ApplicationGroup, StreamValidation) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  StreamSpec spec = track_stream();
  EXPECT_THROW(group.add_stream(spec), std::invalid_argument);  // no tracker
  group.deploy("tracker", bed.host("S2"));
  spec.period = 0;
  EXPECT_THROW(group.add_stream(spec), std::invalid_argument);
}

TEST(ApplicationGroup, UnknownLookupsThrow) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  EXPECT_EQ(group.find("ghost"), nullptr);
  EXPECT_THROW(group.stream_stats("ghost"), std::out_of_range);
  EXPECT_THROW(group.relocate("ghost", bed.host("S1")),
               std::invalid_argument);
}

TEST(ApplicationGroup, MessagesLostDuringOutageAreCounted) {
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  group.deploy("tracker", bed.host("S2"));
  group.add_stream(track_stream());
  bed.run_until(seconds(5));
  bed.host("S2").find_interface("hme0")->link()->set_up(false);
  bed.run_until(seconds(10));
  bed.host("S2").find_interface("hme0")->link()->set_up(true);
  bed.run_until(seconds(15));
  group.stop();

  const StreamStats& stats = group.stream_stats("track");
  // ~5 s of messages at 20/s died on the downed link.
  EXPECT_GT(stats.loss_fraction(), 0.25);
  EXPECT_LT(stats.loss_fraction(), 0.45);
}

TEST(ApplicationGroup, ClosedLoopRecoversDeadlines) {
  // The closed_loop_demo scenario, assertion-backed.
  exp::LirtssTestbed bed;
  ApplicationGroup group(bed.simulator());
  group.deploy("sensor", bed.host("S1"));
  group.deploy("tracker", bed.host("N1"));
  group.add_stream(track_stream());

  mon::ViolationDetector detector(bed.monitor());
  detector.add_requirement("S1", "N1", kilobytes_per_second(400));
  bool relocated = false;
  detector.add_event_callback([&](const mon::QosEvent& event) {
    if (event.kind == mon::QosEvent::Kind::kViolation && !relocated) {
      relocated = true;
      group.relocate("tracker", bed.host("S2"));
    }
  });
  bed.add_load("L", "N2",
               load::RateProfile::pulse(seconds(10), seconds(60),
                                        kilobytes_per_second(1300)));
  bed.run_until(seconds(60));
  group.stop();

  EXPECT_TRUE(relocated);
  const StreamStats& stats = group.stream_stats("track");
  EXPECT_GT(stats.deadline_misses, 0u);  // suffered before the move
  // After the move (~15 s in), latencies are switched-path small again:
  // the last 30 s must be clean.
  int late_in_tail = 0;
  for (const auto& p : stats.latency.points()) {
    if (p.time >= seconds(30) && p.value > 0.050) ++late_in_tail;
  }
  EXPECT_EQ(late_in_tail, 0);
}

}  // namespace
}  // namespace netqos::apps
