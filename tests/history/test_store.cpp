#include "history/store.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace netqos::hist {
namespace {

RetentionPolicy small_policy() {
  RetentionPolicy policy;
  policy.raw_capacity = 16;
  policy.tiers = {{8 * kSecond, 16}, {32 * kSecond, 8}};
  return policy;
}

TEST(Series, RawWindowQueryMatchesBruteForce) {
  Series series(RetentionPolicy{});
  TimeSeries reference;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>((i * 37) % 41);
    series.add(seconds(2 * i), v);
    reference.add(seconds(2 * i), v);
  }
  const SimTime begin = seconds(60);
  const SimTime end = seconds(140);
  const WindowSummary summary = series.query(begin, end);
  const RunningStats expected = reference.stats_between(begin, end);

  EXPECT_TRUE(summary.complete);
  EXPECT_EQ(summary.resolution, 0);
  EXPECT_EQ(summary.samples, expected.count());
  EXPECT_DOUBLE_EQ(summary.min, expected.min());
  EXPECT_DOUBLE_EQ(summary.max, expected.max());
  EXPECT_DOUBLE_EQ(summary.mean, expected.mean());
  // The histogram p95 is approximate; it must land inside the range and
  // near the exact order-statistic percentile.
  EXPECT_GE(summary.p95, summary.min);
  EXPECT_LE(summary.p95, summary.max);
  const double exact = reference.percentile_between(begin, end, 0.95);
  EXPECT_NEAR(summary.p95, exact, (summary.max - summary.min) / 10.0);
}

TEST(Series, FallsBackToCoarserTierAfterEviction) {
  Series series(small_policy());
  // 2 s cadence, 200 samples = 400 s: the 16-slot raw ring holds only the
  // last ~32 s, the 8 s tier ~128 s, the 32 s tier all of it.
  for (int i = 0; i < 200; ++i) {
    series.add(seconds(2 * i), static_cast<double>(i));
  }
  const SimTime end = seconds(400);

  const WindowSummary recent = series.query(seconds(390), end);
  EXPECT_TRUE(recent.complete);
  EXPECT_EQ(recent.resolution, 0);

  const WindowSummary mid = series.query(seconds(300), end);
  EXPECT_TRUE(mid.complete);
  EXPECT_EQ(mid.resolution, 8 * kSecond);

  // The 8 s tier reaches back ~128 s (16 x 8 s) from t=398; a window
  // older than that falls through to the 32 s tier (~256 s reach).
  const WindowSummary old = series.query(seconds(200), end);
  EXPECT_TRUE(old.complete);
  EXPECT_EQ(old.resolution, 32 * kSecond);

  // A window older than even the coarsest retention is answered from the
  // surviving suffix and flagged incomplete.
  Series tiny(RetentionPolicy{4, {{8 * kSecond, 4}}});
  for (int i = 0; i < 100; ++i) tiny.add(seconds(2 * i), 1.0);
  const WindowSummary truncated = tiny.query(0, seconds(200));
  EXPECT_FALSE(truncated.complete);
  EXPECT_GT(truncated.samples, 0u);
}

TEST(Series, DownsampledQueryPreservesExtremes) {
  Series series(small_policy());
  for (int i = 0; i < 200; ++i) {
    // Sawtooth between 0 and 9 with one large spike.
    series.add(seconds(2 * i), i == 150 ? 100.0 : static_cast<double>(i % 10));
  }
  // Window answered from a downsampled tier: min/max must survive the
  // aggregation exactly (the buckets carry true extremes, not means).
  const WindowSummary summary = series.query(seconds(250), seconds(350));
  EXPECT_GT(summary.resolution, 0);
  EXPECT_DOUBLE_EQ(summary.max, 100.0);
  EXPECT_DOUBLE_EQ(summary.min, 0.0);
}

TEST(Series, FootprintFlatInSampleCount) {
  Series short_run(small_policy());
  Series long_run(small_policy());
  for (int i = 0; i < 10; ++i) short_run.add(seconds(i), 1.0);
  for (int i = 0; i < 10'000; ++i) long_run.add(seconds(i), 1.0);
  EXPECT_EQ(short_run.footprint_bytes(), long_run.footprint_bytes());
  EXPECT_GT(long_run.footprint_bytes(), 0u);
  // Occupancy is bounded by the policy's total capacity.
  EXPECT_LE(long_run.bucket_count(), 16u + 16u + 8u);
}

TEST(Series, MaterializeRawRoundTripsWithoutEviction) {
  Series series(RetentionPolicy{});
  TimeSeries expected;
  for (int i = 0; i < 50; ++i) {
    series.add(seconds(i), static_cast<double>(i * i));
    expected.add(seconds(i), static_cast<double>(i * i));
  }
  TimeSeries actual;
  series.materialize_raw(actual);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual.points()[i].time, expected.points()[i].time);
    EXPECT_DOUBLE_EQ(actual.points()[i].value, expected.points()[i].value);
  }
}

TEST(RetentionPolicyTest, ForSpanCoversRequestedSpan) {
  const RetentionPolicy policy =
      RetentionPolicy::for_span(seconds(600), 2 * kSecond);
  // 300 samples over 10 minutes at 2 s cadence, plus slack.
  EXPECT_GE(policy.raw_capacity, 300u);
  ASSERT_EQ(policy.tiers.size(), 2u);
  EXPECT_EQ(policy.tiers[0].width, 8 * kSecond);
  EXPECT_EQ(policy.tiers[1].width, 32 * kSecond);
  EXPECT_THROW(RetentionPolicy::for_span(0, kSecond), std::invalid_argument);
}

TEST(HistoryStoreTest, QueryAndLookup) {
  HistoryStore store(small_policy());
  store.append("a", seconds(1), 10.0);
  store.append("a", seconds(2), 20.0);
  store.append("b", seconds(1), 1.0);

  EXPECT_EQ(store.series_count(), 2u);
  EXPECT_NE(store.find("a"), nullptr);
  EXPECT_EQ(store.find("missing"), nullptr);
  EXPECT_EQ(store.query("missing", 0, seconds(10)).samples, 0u);

  const WindowSummary summary = store.query("a", 0, seconds(10));
  EXPECT_EQ(summary.samples, 2u);
  EXPECT_DOUBLE_EQ(summary.mean, 15.0);

  EXPECT_EQ(store.footprint_bytes(), 2 * store.bytes_per_series());
}

TEST(HistoryStoreTest, DurationInvariantFootprint) {
  HistoryStore short_store(small_policy());
  HistoryStore long_store(small_policy());
  for (int i = 0; i < 20; ++i) short_store.append("x", seconds(i), 1.0);
  for (int i = 0; i < 5000; ++i) long_store.append("x", seconds(i), 1.0);
  EXPECT_EQ(short_store.footprint_bytes(), long_store.footprint_bytes());
}

TEST(HistoryStoreTest, MetricsTrackOccupancyAndFootprint) {
  obs::MetricsRegistry registry;
  HistoryStore store(small_policy());
  store.attach_metrics(registry, "test");
  for (int i = 0; i < 500; ++i) {
    store.append("k", seconds(2 * i), static_cast<double>(i));
  }
  const obs::Labels labels = {{"store", "test"}};
  const double occupancy =
      registry.gauge("netqos_history_occupancy_buckets", "", labels).value();
  const double footprint =
      registry.gauge("netqos_history_footprint_bytes", "", labels).value();
  const double samples =
      registry.counter("netqos_history_samples_total", "", labels).value();
  // The O(1) delta-tracked gauge must agree with a full recount.
  EXPECT_DOUBLE_EQ(occupancy,
                   static_cast<double>(store.find("k")->bucket_count()));
  EXPECT_DOUBLE_EQ(footprint, static_cast<double>(store.footprint_bytes()));
  EXPECT_DOUBLE_EQ(samples, 500.0);
}

TEST(SeriesKeys, NormalizeAndCompose) {
  EXPECT_EQ(interface_series_key("hub0", "eth1"), "if:hub0/eth1");
  EXPECT_EQ(path_series_key("S1", "N1", "used"), "path:N1|S1:used");
  EXPECT_EQ(path_series_key("N1", "S1", "used"), "path:N1|S1:used");
  EXPECT_EQ(connection_series_key(7), "conn:7");
}

}  // namespace
}  // namespace netqos::hist
