#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "monitor/qos.h"
#include "rm/manager.h"

namespace netqos::mon {
namespace {

// The Fig. 3 testbed's spec requirement: S1<->N1 needs 500 KB/s available
// on the 1.25 MB/s hub segment.
constexpr double kRequiredKBps = 500.0;

TEST(PredictiveDetector, WarnsBeforeReactiveViolationOnRamp) {
  exp::LirtssTestbed bed;
  ViolationDetector reactive(bed.monitor());
  reactive.add_requirement("S1", "N1", kilobytes_per_second(kRequiredKBps));
  PredictiveDetector predictive(bed.monitor());
  predictive.add_requirement("S1", "N1",
                             kilobytes_per_second(kRequiredKBps));

  // Fig. 4a-style staircase climbing through the requirement: 200 KB/s,
  // +50 KB/s every 4 s up to 900 KB/s. Available bandwidth falls ~12.5
  // KB/s per second, so the 10 s-horizon forecast crosses the 500 KB/s
  // requirement several poll periods before the measured value does.
  bed.add_load("L", "N1",
               load::RateProfile::staircase(
                   kilobytes_per_second(200), seconds(4),
                   kilobytes_per_second(50), seconds(4), 15, seconds(90)));
  bed.run_until(seconds(90));

  ASSERT_GE(predictive.warning_count(), 1u);
  const PredictiveEvent& warning = predictive.events().front();
  EXPECT_EQ(warning.kind, PredictiveEvent::Kind::kEarlyWarning);
  EXPECT_GE(warning.available, kilobytes_per_second(kRequiredKBps));
  EXPECT_LT(warning.forecast, kilobytes_per_second(kRequiredKBps));

  // The reactive detector must also fire (the ramp really violates), and
  // the warning must lead it by at least one poll period — the paper's
  // poll interval is 2 s on this testbed.
  ASSERT_FALSE(reactive.events().empty());
  const QosEvent& violation = reactive.events().front();
  EXPECT_EQ(violation.kind, QosEvent::Kind::kViolation);
  EXPECT_LE(warning.time + 2 * kSecond, violation.time);
}

TEST(PredictiveDetector, NoFalseWarningsOnSteadyLoad) {
  exp::LirtssTestbed bed;
  PredictiveDetector predictive(bed.monitor());
  predictive.add_requirement("S1", "N1",
                             kilobytes_per_second(kRequiredKBps));
  // Steady 400 KB/s leaves ~830 KB/s available: comfortably above the
  // requirement, trend ~0. Zero warnings is the acceptance criterion.
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(80),
                                        kilobytes_per_second(400)));
  bed.run_until(seconds(80));
  EXPECT_EQ(predictive.warning_count(), 0u);
  EXPECT_TRUE(predictive.events().empty());
}

// ------------------------------------------------------------------
// Golden tests: synthetic step/ramp/steady series driven through the
// same observe() entry point the monitor callback uses, with the 2 s
// poll cadence. Deterministic by construction — no simulator noise.

class PredictiveGolden : public ::testing::Test {
 protected:
  exp::LirtssTestbed bed_;
  PredictiveDetector predictive_{bed_.monitor()};
  PathKey key_{"S1", "N1"};

  void SetUp() override {
    predictive_.add_requirement("S1", "N1",
                                kilobytes_per_second(kRequiredKBps));
  }

  void feed(SimTime t, double kbps) {
    predictive_.observe(key_, t, kilobytes_per_second(kbps));
  }
};

TEST_F(PredictiveGolden, SteadySeriesEmitsNothing) {
  for (int i = 0; i < 60; ++i) feed(seconds(2 * i), 830.0);
  EXPECT_TRUE(predictive_.events().empty());
}

TEST_F(PredictiveGolden, StepDownAboveRequirementEmitsNothing) {
  // 1240 KB/s idle, sharp step to 830 at t=10: the transient negative
  // trend must decay without surviving the confirm window — a step that
  // lands above the requirement is not an approaching violation.
  int i = 0;
  for (; i < 5; ++i) feed(seconds(2 * i), 1240.0);
  for (; i < 60; ++i) feed(seconds(2 * i), 830.0);
  EXPECT_TRUE(predictive_.events().empty());
}

TEST_F(PredictiveGolden, RampWarnsAtLeastOnePollPeriodBeforeCrossing) {
  // Available falls 12.5 KB/s per second from 1040; it crosses the
  // 500 KB/s requirement at t = 2*((1040-500)/25) + 20 polls offset...
  // tracked explicitly below.
  SimTime crossing_time = -1;
  SimTime warning_time = -1;
  for (int i = 0; i < 60; ++i) {
    const SimTime t = seconds(2 * i);
    const double v = i < 10 ? 1040.0 : 1040.0 - 25.0 * (i - 10);
    if (v < kRequiredKBps && crossing_time < 0) crossing_time = t;
    feed(t, v);
    if (warning_time < 0 && predictive_.warning_count() > 0) {
      warning_time = t;
    }
  }
  ASSERT_GE(crossing_time, 0);
  ASSERT_GE(warning_time, 0);
  // The warning leads the actual crossing by >= one 2 s poll period.
  EXPECT_LE(warning_time + 2 * kSecond, crossing_time);
}

TEST_F(PredictiveGolden, AllClearWhenTrendFlattensAboveRequirement) {
  // Decline toward the requirement, then plateau at 580 KB/s (above the
  // 550 KB/s clear margin): a warning raised during the descent must be
  // followed by an all-clear, and no violation ever happens.
  int i = 0;
  for (; i < 5; ++i) feed(seconds(2 * i), 1040.0);
  for (; i < 14; ++i) feed(seconds(2 * i), 1040.0 - 50.0 * (i - 4));
  for (; i < 60; ++i) feed(seconds(2 * i), 580.0);

  ASSERT_GE(predictive_.warning_count(), 1u);
  EXPECT_FALSE(predictive_.warning_active("S1", "N1"));
  bool saw_all_clear = false;
  for (const PredictiveEvent& event : predictive_.events()) {
    if (event.kind == PredictiveEvent::Kind::kAllClear) saw_all_clear = true;
  }
  EXPECT_TRUE(saw_all_clear);
}

TEST(PredictiveDetector, FeedsProactiveRecommendationsToRm) {
  exp::LirtssTestbed bed;
  ViolationDetector reactive(bed.monitor());
  reactive.add_requirement("S1", "N1", kilobytes_per_second(kRequiredKBps));
  PredictiveDetector predictive(bed.monitor());
  predictive.add_requirement("S1", "N1",
                             kilobytes_per_second(kRequiredKBps));
  rm::ResourceManager manager(bed.monitor(), reactive);
  manager.attach_predictive(predictive);

  bed.add_load("L", "N1",
               load::RateProfile::staircase(
                   kilobytes_per_second(200), seconds(4),
                   kilobytes_per_second(50), seconds(4), 15, seconds(90)));
  bed.run_until(seconds(90));

  ASSERT_GE(manager.proactive_recommendations(), 1u);
  // The first recommendation is the proactive one: it predates the
  // reactive violation's reallocation advice.
  const rm::Recommendation& first = manager.recommendations().front();
  EXPECT_EQ(first.action.rfind("proactive:", 0), 0u);
  EXPECT_GE(manager.recommendations().size(),
            manager.proactive_recommendations());
}

TEST(PredictiveDetector, AddRequirementRegistersPathIfMissing) {
  exp::LirtssTestbed bed;
  PredictiveDetector predictive(bed.monitor());
  predictive.add_requirement("S2", "N2", kilobytes_per_second(100));
  EXPECT_NO_THROW(bed.monitor().path_of("S2", "N2"));
}

}  // namespace
}  // namespace netqos::mon
