#include "history/ring.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace netqos::hist {
namespace {

TEST(RingTier, RawTierKeepsOneSamplePerBucket) {
  RingTier raw(0, 8);
  for (int i = 0; i < 5; ++i) {
    bool evicted = true;
    EXPECT_EQ(raw.add(seconds(i), 10.0 * i, &evicted),
              RingTier::Append::kNewBucket);
    EXPECT_FALSE(evicted);
  }
  ASSERT_EQ(raw.size(), 5u);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const Bucket& b = raw.at(i);
    EXPECT_EQ(b.start, seconds(i));
    EXPECT_EQ(b.count, 1u);
    EXPECT_DOUBLE_EQ(b.min, 10.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(b.max, b.min);
    EXPECT_DOUBLE_EQ(b.mean(), b.min);
    EXPECT_DOUBLE_EQ(b.last, b.min);
  }
}

TEST(RingTier, EvictsOldestAtCapacity) {
  RingTier raw(0, 3);
  for (int i = 0; i < 7; ++i) {
    bool evicted = false;
    raw.add(seconds(i), static_cast<double>(i), &evicted);
    EXPECT_EQ(evicted, i >= 3);
  }
  ASSERT_EQ(raw.size(), 3u);
  // Oldest-first: the survivors are samples 4, 5, 6.
  EXPECT_EQ(raw.at(0).start, seconds(4));
  EXPECT_EQ(raw.at(1).start, seconds(5));
  EXPECT_EQ(raw.at(2).start, seconds(6));
  EXPECT_EQ(raw.oldest_start(), seconds(4));
  EXPECT_EQ(raw.newest().start, seconds(6));
}

TEST(RingTier, FootprintIndependentOfAppendCount) {
  RingTier a(0, 16);
  RingTier b(0, 16);
  for (int i = 0; i < 1000; ++i) b.add(seconds(i), 1.0);
  EXPECT_EQ(a.footprint_bytes(), b.footprint_bytes());
  EXPECT_EQ(a.capacity(), 16u);
  EXPECT_EQ(b.capacity(), 16u);
}

TEST(RingTier, WidthTierStreamsMinMeanMax) {
  RingTier tier(10 * kSecond, 4);
  // All three land in the [0, 10s) bucket.
  EXPECT_EQ(tier.add(seconds(1), 5.0), RingTier::Append::kNewBucket);
  EXPECT_EQ(tier.add(seconds(4), 1.0), RingTier::Append::kMerged);
  EXPECT_EQ(tier.add(seconds(9), 9.0), RingTier::Append::kMerged);
  ASSERT_EQ(tier.size(), 1u);
  const Bucket& b = tier.newest();
  EXPECT_EQ(b.start, 0);
  EXPECT_EQ(b.count, 3u);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.max, 9.0);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
  EXPECT_DOUBLE_EQ(b.last, 9.0);
}

TEST(RingTier, OddAlignmentSplitsBucketsOnBoundaries) {
  // Samples straddling a bucket boundary at an awkward offset: 10 s
  // buckets with samples at 9.999 s and 10.000 s must not share one.
  RingTier tier(10 * kSecond, 4);
  tier.add(seconds(10) - 1, 2.0);  // one nanosecond before the boundary
  tier.add(seconds(10), 8.0);
  ASSERT_EQ(tier.size(), 2u);
  EXPECT_EQ(tier.at(0).start, 0);
  EXPECT_EQ(tier.at(1).start, seconds(10));
  EXPECT_DOUBLE_EQ(tier.at(0).max, 2.0);
  EXPECT_DOUBLE_EQ(tier.at(1).min, 8.0);
}

TEST(RingTier, OddSampleCadenceKeepsInvariants) {
  // 3 s cadence into 10 s buckets: bucket occupancy alternates 4/3 and
  // the invariants min <= mean <= max must hold in every bucket.
  RingTier tier(10 * kSecond, 8);
  for (int i = 0; i < 30; ++i) {
    tier.add(seconds(3 * i), static_cast<double>((i * 7) % 13));
  }
  for (std::size_t i = 0; i < tier.size(); ++i) {
    const Bucket& b = tier.at(i);
    EXPECT_GT(b.count, 0u);
    EXPECT_LE(b.min, b.mean());
    EXPECT_LE(b.mean(), b.max);
    EXPECT_GE(b.last, b.min);
    EXPECT_LE(b.last, b.max);
    EXPECT_EQ(b.start % (10 * kSecond), 0);
    if (i > 0) EXPECT_LT(tier.at(i - 1).start, b.start);
  }
}

TEST(RingTier, LateSampleFoldsIntoNewestBucket) {
  // A re-probe stamped slightly in the past must not reorder history;
  // it folds into the newest bucket.
  RingTier raw(0, 8);
  raw.add(seconds(5), 1.0);
  bool evicted = true;
  EXPECT_EQ(raw.add(seconds(4), 3.0, &evicted), RingTier::Append::kMerged);
  EXPECT_FALSE(evicted);
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(raw.newest().count, 2u);
  EXPECT_DOUBLE_EQ(raw.newest().max, 3.0);
}

TEST(RingTier, OverlapsRespectsBucketExtent) {
  RingTier raw(0, 4);
  RingTier wide(10 * kSecond, 4);
  raw.add(seconds(5), 1.0);
  wide.add(seconds(5), 1.0);  // bucket [0, 10s)
  // Raw buckets are points.
  EXPECT_TRUE(raw.overlaps(raw.newest(), seconds(5), seconds(6)));
  EXPECT_FALSE(raw.overlaps(raw.newest(), seconds(6), seconds(7)));
  // Width buckets cover their whole window.
  EXPECT_TRUE(wide.overlaps(wide.newest(), seconds(8), seconds(9)));
  EXPECT_FALSE(wide.overlaps(wide.newest(), seconds(10), seconds(20)));
}

TEST(RingTier, RejectsZeroCapacity) {
  EXPECT_THROW(RingTier(0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace netqos::hist
