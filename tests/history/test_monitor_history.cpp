#include <gtest/gtest.h>

#include "experiments/lirtss.h"
#include "history/store.h"

namespace netqos::mon {
namespace {

TEST(MonitorHistory, StoreMemoryIsDurationInvariant) {
  // Two identical testbeds differing only in how long they run: the
  // history stores (path-level and the StatsDb's per-interface one) must
  // end with identical capacity and footprint — the bounded-memory
  // guarantee the subsystem exists for.
  std::size_t footprints[2];
  std::size_t db_footprints[2];
  std::size_t series_counts[2];
  const SimTime durations[2] = {seconds(30), seconds(90)};
  for (int run = 0; run < 2; ++run) {
    exp::LirtssTestbed bed;
    bed.watch("S1", "N1");
    bed.add_load("L", "N1",
                 load::RateProfile::pulse(seconds(5), durations[run],
                                          kilobytes_per_second(300)));
    bed.run_until(durations[run]);
    footprints[run] = bed.monitor().history().footprint_bytes();
    db_footprints[run] = bed.monitor().stats_db().history().footprint_bytes();
    series_counts[run] = bed.monitor().history().series_count();
  }
  EXPECT_GT(footprints[0], 0u);
  EXPECT_EQ(footprints[0], footprints[1]);
  EXPECT_GT(db_footprints[0], 0u);
  EXPECT_EQ(db_footprints[0], db_footprints[1]);
  EXPECT_EQ(series_counts[0], series_counts[1]);
}

TEST(MonitorHistory, StoreBackedSeriesMatchesCallbackSamples) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  TimeSeries observed_used;
  TimeSeries observed_avail;
  bed.monitor().add_sample_callback(
      [&](const PathKey& key, SimTime time, const PathUsage& usage) {
        if (!usage.complete) return;
        observed_used.add(time, usage.used_at_bottleneck);
        observed_avail.add(time, usage.available);
      });
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(40),
                                        kilobytes_per_second(250)));
  bed.run_until(seconds(40));

  const TimeSeries& used = bed.monitor().used_series("S1", "N1");
  const TimeSeries& avail = bed.monitor().available_series("S1", "N1");
  ASSERT_EQ(used.size(), observed_used.size());
  ASSERT_EQ(avail.size(), observed_avail.size());
  for (std::size_t i = 0; i < used.size(); ++i) {
    EXPECT_EQ(used.points()[i].time, observed_used.points()[i].time);
    EXPECT_DOUBLE_EQ(used.points()[i].value,
                     observed_used.points()[i].value);
    EXPECT_DOUBLE_EQ(avail.points()[i].value,
                     observed_avail.points()[i].value);
  }
}

TEST(MonitorHistory, WindowedQueryOverPathSeries) {
  exp::LirtssTestbed bed;
  bed.watch("S1", "N1");
  bed.add_load("L", "N1",
               load::RateProfile::pulse(seconds(5), seconds(60),
                                        kilobytes_per_second(400)));
  bed.run_until(seconds(60));

  const auto key = hist::path_series_key("S1", "N1", "avail");
  const hist::WindowSummary last30 =
      bed.monitor().history().query(key, seconds(30), seconds(60));
  ASSERT_GT(last30.samples, 0u);
  EXPECT_TRUE(last30.complete);
  EXPECT_EQ(last30.resolution, 0);  // raw precision for a recent window
  EXPECT_LE(last30.min, last30.mean);
  EXPECT_LE(last30.mean, last30.max);
  EXPECT_GE(last30.p95, last30.min);
  EXPECT_LE(last30.p95, last30.max);

  // The windowed answer agrees with brute force over the materialized
  // raw series.
  const RunningStats expected =
      bed.monitor()
          .available_series("S1", "N1")
          .stats_between(seconds(30), seconds(60));
  EXPECT_EQ(last30.samples, expected.count());
  EXPECT_DOUBLE_EQ(last30.mean, expected.mean());
  EXPECT_DOUBLE_EQ(last30.min, expected.min());
  EXPECT_DOUBLE_EQ(last30.max, expected.max());
}

TEST(MonitorHistory, CustomRetentionPlumbsThroughTestbed) {
  exp::TestbedOptions options;
  options.retention = hist::RetentionPolicy::for_span(seconds(60),
                                                      2 * kSecond);
  exp::LirtssTestbed bed(options);
  bed.watch("S1", "N1");
  bed.run_until(seconds(20));
  EXPECT_EQ(bed.monitor().history().policy().raw_capacity,
            options.retention.raw_capacity);
  EXPECT_EQ(bed.monitor().stats_db().history().policy().raw_capacity,
            options.retention.raw_capacity);
}

}  // namespace
}  // namespace netqos::mon
