// Windowed queries interleaved with appends — what the query service
// does live: every request races the poll loop's appends, so the
// complete/resolution flags must be honest at every intermediate store
// state, not just after a settled run. Three regimes are pinned: the
// initial fill (trailing window reaches before the first sample), the
// steady state (raw tier covers the window), and post-eviction fallback
// (coarser tiers answer, or nothing covers the window start at all).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "history/store.h"
#include "obs/metrics.h"

namespace netqos::hist {
namespace {

RetentionPolicy small_policy() {
  RetentionPolicy policy;
  policy.raw_capacity = 16;
  policy.tiers = {{8 * kSecond, 16}, {32 * kSecond, 8}};
  return policy;
}

constexpr SimDuration kPoll = 2 * kSecond;

TEST(StoreUnderAppend, TrailingWindowHonestDuringInitialFill) {
  Series series(small_policy());
  const SimDuration window = 20 * kSecond;

  for (int i = 0; i < 40; ++i) {
    const SimTime now = seconds(1) + i * kPoll;
    series.add(now, 100.0 + i);

    const SimTime begin = now - window;
    const WindowSummary summary = series.query(begin, now + 1);

    // Every appended sample is in the trailing window until eviction
    // kicks in (raw capacity 16 at one sample per poll).
    if (i < 10) {
      EXPECT_EQ(summary.samples, static_cast<std::size_t>(i + 1))
          << "poll " << i;
    }
    if (begin < seconds(1)) {
      // The window tail is still filling: no tier can prove retention
      // back to `begin`, so the answer must say so even though zero
      // samples have been lost.
      EXPECT_FALSE(summary.complete) << "poll " << i;
    } else if (i < 16) {
      // Window fully inside raw retention: raw answers, exactly.
      EXPECT_TRUE(summary.complete) << "poll " << i;
      EXPECT_EQ(summary.resolution, 0) << "poll " << i;
      EXPECT_EQ(summary.max, 100.0 + i);
    }
  }
}

TEST(StoreUnderAppend, ResolutionDegradesThroughTiersAfterEviction) {
  Series series(small_policy());
  // 200 polls at 2 s: raw keeps the last 16 samples (32 s), the 8 s tier
  // the last 16 buckets (128 s), the 32 s tier the last 8 (256 s).
  SimTime now = 0;
  for (int i = 0; i < 200; ++i) {
    now = i * kPoll;
    series.add(now, static_cast<double>(i));
  }

  // Recent window: raw still covers it, full precision.
  WindowSummary recent = series.query(now - 20 * kSecond, now + 1);
  EXPECT_TRUE(recent.complete);
  EXPECT_EQ(recent.resolution, 0);

  // Mid-age window: raw evicted its start, the 8 s tier answers.
  WindowSummary mid = series.query(now - 100 * kSecond, now + 1);
  EXPECT_TRUE(mid.complete);
  EXPECT_EQ(mid.resolution, 8 * kSecond);

  // Old window: only the 32 s tier reaches back that far.
  WindowSummary old = series.query(now - 200 * kSecond, now + 1);
  EXPECT_TRUE(old.complete);
  EXPECT_EQ(old.resolution, 32 * kSecond);

  // Ancient window: beyond every tier — answered from the surviving
  // suffix, flagged incomplete.
  WindowSummary ancient = series.query(now - 350 * kSecond, now + 1);
  EXPECT_FALSE(ancient.complete);
  EXPECT_EQ(ancient.resolution, 32 * kSecond);
  EXPECT_GT(ancient.samples, 0u);

  // Extremes survive the downsample on every tier that answered.
  EXPECT_EQ(recent.max, 199.0);
  EXPECT_EQ(mid.max, 199.0);
  EXPECT_EQ(old.max, 199.0);
}

TEST(StoreUnderAppend, CompleteFlagExactAtRetentionBoundary) {
  Series series(small_policy());
  SimTime now = 0;
  for (int i = 0; i < 64; ++i) {
    now = i * kPoll;
    series.add(now, 1.0);
  }
  const SimTime raw_oldest = *series.raw().oldest_start();

  EXPECT_TRUE(series.query(raw_oldest, now + 1).complete);
  EXPECT_EQ(series.query(raw_oldest, now + 1).resolution, 0);
  // One nanosecond earlier and raw can no longer vouch for the window
  // start; the next tier down takes over.
  const WindowSummary just_before = series.query(raw_oldest - 1, now + 1);
  EXPECT_EQ(just_before.resolution, 8 * kSecond);
  EXPECT_TRUE(just_before.complete);
}

TEST(StoreUnderAppend, InterleavedQueriesDoNotPerturbTheSeries) {
  // A reader issuing a query between every append must observe the same
  // final state as a pure writer — queries are pure reads, and the
  // store's footprint stays fixed throughout.
  HistoryStore queried{small_policy()};
  HistoryStore silent{small_policy()};
  const std::string key = path_series_key("S1", "N1", "avail");

  const std::size_t footprint_before = queried.footprint_bytes();
  SimTime now = 0;
  for (int i = 0; i < 120; ++i) {
    now = i * kPoll;
    const double v = 500.0 - (i % 7);
    queried.append(key, now, v);
    silent.append(key, now, v);
    (void)queried.query(key, now - 30 * kSecond, now + 1);
    (void)queried.query(key, now - 300 * kSecond, now + 1);
  }
  EXPECT_GT(queried.footprint_bytes(), footprint_before);  // one new series
  EXPECT_EQ(queried.footprint_bytes(), silent.footprint_bytes());

  for (SimDuration window : {10 * kSecond, 60 * kSecond, 200 * kSecond}) {
    const WindowSummary a = queried.query(key, now - window, now + 1);
    const WindowSummary b = silent.query(key, now - window, now + 1);
    EXPECT_EQ(a.samples, b.samples) << "window " << to_seconds(window);
    EXPECT_EQ(a.buckets, b.buckets);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.resolution, b.resolution);
    EXPECT_EQ(a.complete, b.complete);
  }
}

TEST(StoreUnderAppend, QueryCounterTracksInterleavedReads) {
  obs::MetricsRegistry registry;
  HistoryStore store{small_policy()};
  store.attach_metrics(registry, "test");
  const std::string key = interface_series_key("sw0", "port1");

  for (int i = 0; i < 10; ++i) {
    store.append(key, i * kPoll, 1.0);
    (void)store.query(key, 0, i * kPoll + 1);
  }
  const obs::Counter* queries =
      registry.find_counter("netqos_history_queries_total",
                            {{"store", "test"}});
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->value(), 10u);
  const obs::Counter* samples =
      registry.find_counter("netqos_history_samples_total",
                            {{"store", "test"}});
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->value(), 10u);
}

}  // namespace
}  // namespace netqos::hist
