#include "history/forecast.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace netqos::hist {
namespace {

TEST(Ewma, ConvergesToConstantInput) {
  EwmaEstimator ewma(0.3);
  EXPECT_EQ(ewma.samples(), 0u);
  for (int i = 0; i < 50; ++i) ewma.observe(42.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 42.0);
  // A step is followed with first-order lag.
  ewma.observe(100.0);
  EXPECT_NEAR(ewma.value(), 42.0 + 0.3 * (100.0 - 42.0), 1e-9);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(EwmaEstimator(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaEstimator(1.5), std::invalid_argument);
}

TEST(Holt, SteadyInputHasZeroTrend) {
  HoltForecaster holt;
  for (int i = 0; i < 40; ++i) holt.observe(seconds(2 * i), 700.0);
  EXPECT_NEAR(holt.level(), 700.0, 1e-6);
  EXPECT_NEAR(holt.trend_per_second(), 0.0, 1e-9);
  EXPECT_NEAR(holt.forecast_after(seconds(10)), 700.0, 1e-6);
  // Flat trend: no predicted crossing of a lower threshold.
  EXPECT_FALSE(holt.time_until_below(500.0).has_value());
  // Already below: the crossing is "now".
  EXPECT_EQ(holt.time_until_below(800.0), SimDuration{0});
}

TEST(Holt, RampRecoversSlopeAndCrossingTime) {
  HoltForecaster holt;
  // v(t) = 1000 - 10 t: slope -10 per second.
  for (int i = 0; i < 40; ++i) {
    const SimTime t = seconds(i);
    holt.observe(t, 1000.0 - 10.0 * static_cast<double>(i));
  }
  EXPECT_NEAR(holt.trend_per_second(), -10.0, 0.5);
  const double level = holt.level();
  EXPECT_NEAR(holt.forecast_after(seconds(10)), level - 100.0, 5.0);

  const auto until = holt.time_until_below(level - 200.0);
  ASSERT_TRUE(until.has_value());
  EXPECT_NEAR(to_seconds(*until), 20.0, 1.5);
}

TEST(Holt, StepResponseConvergesToNewLevel) {
  HoltForecaster holt;
  int i = 0;
  for (; i < 20; ++i) holt.observe(seconds(i), 100.0);
  for (; i < 80; ++i) holt.observe(seconds(i), 400.0);
  EXPECT_NEAR(holt.level(), 400.0, 1.0);
  EXPECT_NEAR(holt.trend_per_second(), 0.0, 0.5);
}

TEST(Holt, IgnoresDuplicateAndReorderedTimestamps) {
  HoltForecaster holt;
  holt.observe(seconds(0), 10.0);
  holt.observe(seconds(2), 20.0);
  const double level = holt.level();
  const double trend = holt.trend_per_second();
  holt.observe(seconds(2), 999.0);  // duplicate time: no slope info
  holt.observe(seconds(1), 999.0);  // reordered: ignored
  EXPECT_DOUBLE_EQ(holt.level(), level);
  EXPECT_DOUBLE_EQ(holt.trend_per_second(), trend);
  EXPECT_EQ(holt.samples(), 2u);
}

TEST(Holt, IrregularIntervalsDoNotBendTheSlope) {
  // Same underlying line sampled regularly vs irregularly must agree on
  // the recovered trend: the estimator is time-aware, not index-aware.
  HoltForecaster regular;
  HoltForecaster irregular;
  const auto line = [](double t) { return 500.0 - 5.0 * t; };
  for (int i = 0; i < 60; ++i) {
    regular.observe(seconds(i), line(static_cast<double>(i)));
  }
  double t = 0.0;
  for (int i = 0; i < 60; ++i) {
    t += (i % 3 == 0) ? 0.5 : 1.25;
    irregular.observe(from_seconds(t), line(t));
  }
  EXPECT_NEAR(regular.trend_per_second(), -5.0, 0.3);
  EXPECT_NEAR(irregular.trend_per_second(), -5.0, 0.3);
}

TEST(Holt, RejectsBadConfig) {
  EXPECT_THROW(HoltForecaster({0.0, 0.3}), std::invalid_argument);
  EXPECT_THROW(HoltForecaster({0.5, 1.5}), std::invalid_argument);
}

TEST(HoltTrendPerSecond, WindowedSeriesEstimate) {
  TimeSeries series;
  for (int i = 0; i < 50; ++i) {
    // Flat until t=25, then dropping 8/s.
    const double v = i < 25 ? 900.0 : 900.0 - 8.0 * (i - 25);
    series.add(seconds(i), v);
  }
  EXPECT_NEAR(holt_trend_per_second(series, seconds(30), seconds(50)), -8.0,
              0.5);
  EXPECT_NEAR(holt_trend_per_second(series, seconds(5), seconds(20)), 0.0,
              1e-9);
  // Fewer than two samples in the window: no estimate.
  EXPECT_DOUBLE_EQ(holt_trend_per_second(series, seconds(5), seconds(6)),
                   0.0);
  EXPECT_DOUBLE_EQ(
      holt_trend_per_second(TimeSeries(), seconds(0), seconds(10)), 0.0);
}

}  // namespace
}  // namespace netqos::hist
