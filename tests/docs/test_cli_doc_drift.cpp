// CLI-flag drift audit: netqosmon's parser, its usage() banner, and the
// README flag table must name the same set of flags, and prose
// references in README/DESIGN must use the spelling the parser accepts
// (space-separated values, not `--flag=value`).
//
// The three surfaces live in different files and historically drifted —
// `--history-retention` and `--forecast-horizon` worked and appeared in
// README examples but were missing from the flag table, and DESIGN
// described `--modules=LIST` which the parser rejects. This suite reads
// the sources straight out of the tree so any future flag lands (or
// leaves) all three places at once.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef NETQOS_SOURCE_DIR
#define NETQOS_SOURCE_DIR ""
#endif

namespace {

std::string read_file(const std::string& relative) {
  const std::string path = std::string(NETQOS_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Flags the netqosmon parser actually accepts: every `arg == "--x"`
/// comparison in parse_args. This is ground truth — the comparisons are
/// what the binary executes.
std::set<std::string> parser_flags(const std::string& source) {
  std::set<std::string> flags;
  const std::regex pattern("arg == \"(--[a-z][a-z0-9-]*)\"");
  for (std::sregex_iterator it(source.begin(), source.end(), pattern), end;
       it != end; ++it) {
    flags.insert((*it)[1].str());
  }
  return flags;
}

/// Flags named in the usage() banner (the fprintf string literal).
std::set<std::string> usage_flags(const std::string& source) {
  const std::size_t begin = source.find("void usage(");
  const std::size_t end = source.find("std::exit", begin);
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  const std::string body = source.substr(begin, end - begin);
  std::set<std::string> flags;
  const std::regex pattern("(--[a-z][a-z0-9-]*)");
  for (std::sregex_iterator it(body.begin(), body.end(), pattern), stop;
       it != stop; ++it) {
    flags.insert((*it)[1].str());
  }
  return flags;
}

/// Rows of the README "`netqosmon` options:" table, by leading flag.
std::set<std::string> readme_table_flags(const std::string& readme) {
  const std::size_t begin = readme.find("`netqosmon` options:");
  EXPECT_NE(begin, std::string::npos) << "README lost the flag table";
  std::set<std::string> flags;
  std::istringstream lines(readme.substr(begin));
  std::string line;
  bool in_table = false;
  const std::regex row("^\\| `(--[a-z][a-z0-9-]*)");
  while (std::getline(lines, line)) {
    if (line.rfind("| Flag", 0) == 0 || line.rfind("|--", 0) == 0 ||
        line.rfind("|---", 0) == 0) {
      in_table = true;
      continue;
    }
    if (in_table && line.rfind("|", 0) != 0 && !line.empty()) break;
    std::smatch match;
    if (std::regex_search(line, match, row)) flags.insert(match[1].str());
  }
  return flags;
}

std::string join(const std::set<std::string>& flags) {
  std::string out;
  for (const std::string& flag : flags) {
    if (!out.empty()) out += " ";
    out += flag;
  }
  return out;
}

TEST(CliDocDrift, UsageBannerMatchesParser) {
  const std::string source = read_file("examples/netqosmon.cpp");
  std::set<std::string> parsed = parser_flags(source);
  parsed.erase("--help");  // spelled -h/--help, banner-exempt by custom
  EXPECT_EQ(join(usage_flags(source)), join(parsed));
}

TEST(CliDocDrift, ReadmeTableMatchesParser) {
  const std::string source = read_file("examples/netqosmon.cpp");
  std::set<std::string> parsed = parser_flags(source);
  parsed.erase("--help");
  EXPECT_EQ(join(readme_table_flags(read_file("README.md"))), join(parsed));
}

TEST(CliDocDrift, ProseNeverUsesEqualsSpelling) {
  const std::string source = read_file("examples/netqosmon.cpp");
  const std::set<std::string> parsed = parser_flags(source);
  for (const char* doc : {"README.md", "DESIGN.md", "EXPERIMENTS.md"}) {
    const std::string text = read_file(doc);
    for (const std::string& flag : parsed) {
      EXPECT_EQ(text.find(flag + "="), std::string::npos)
          << doc << " writes " << flag
          << "=VALUE but netqosmon only parses space-separated values";
    }
  }
}

TEST(CliDocDrift, AuditedFlagsDocumentedInReadmeTable) {
  // The flags that drifted once; pin them to the table so examples
  // elsewhere in the docs always have a definition to point at.
  const std::set<std::string> table = readme_table_flags(read_file("README.md"));
  for (const char* flag :
       {"--history-retention", "--forecast-horizon", "--serve", "--modules",
        "--backoff-base", "--backoff-cap", "--probe"}) {
    EXPECT_TRUE(table.count(flag)) << flag << " missing from README table";
  }
}

}  // namespace
