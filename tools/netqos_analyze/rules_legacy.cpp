// Ports of netqos_lint.py rules R1-R5. Every matcher here mirrors the
// Python regex it replaces, quirks included — scripts/lint.sh runs both
// tools over the fixture corpus and fails on any verdict difference, so
// "close enough" is not close enough. Comments call out the original
// pattern being ported.
#include <algorithm>
#include <cctype>
#include <string>

#include "analyze.h"
#include "rules_internal.h"

namespace netqos::analyze {

namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }

std::size_t skip_ws(std::string_view s, std::size_t i) {
  while (i < s.size() && is_space(s[i])) ++i;
  return i;
}

bool boundary_before(std::string_view s, std::size_t pos) {
  return pos == 0 || !is_word(s[pos - 1]);
}

bool boundary_after(std::string_view s, std::size_t end) {
  return end >= s.size() || !is_word(s[end]);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

// --- RELOP_RE: <=|>=|(?<![<>-])<(?![<>=])|(?<![<>-])>(?![<>=]) ----------
bool has_relop(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c != '<' && c != '>') continue;
    if (i + 1 < line.size() && line[i + 1] == '=') return true;  // <= >=
    const char prev = i > 0 ? line[i - 1] : '\0';
    const char next = i + 1 < line.size() ? line[i + 1] : '\0';
    if (prev == '<' || prev == '>' || prev == '-') continue;
    if (next == '<' || next == '>' || next == '=') continue;
    return true;
  }
  return false;
}

}  // namespace

RuleContext::RuleContext(const SourceFile& f, const Syntax& s,
                         const EnumRegistry& r)
    : file(f), syntax(s), registry(r) {
  // ALLOW_RE: netqos-lint:\s*allow\(([^)]*)\) — raw lines; a match
  // covers its own line and the next one.
  for (std::size_t i = 0; i < file.lines.size(); ++i) {
    const std::string& line = file.lines[i];
    const std::size_t tag = line.find("netqos-lint:");
    if (tag == std::string::npos) continue;
    std::size_t p = skip_ws(line, tag + 12);
    if (!starts_with(std::string_view(line).substr(p), "allow(")) continue;
    p += 6;
    const std::size_t close = line.find(')', p);
    if (close == std::string::npos) continue;
    const std::string list = line.substr(p, close - p);
    std::set<std::string> rules;
    std::size_t start = 0;
    while (start <= list.size()) {
      std::size_t comma = list.find(',', start);
      if (comma == std::string::npos) comma = list.size();
      std::string rule = normalize(list.substr(start, comma - start));
      std::transform(rule.begin(), rule.end(), rule.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::toupper(c));
                     });
      if (!rule.empty()) rules.insert(rule);
      start = comma + 1;
    }
    const int lineno = static_cast<int>(i) + 1;
    allows[lineno].insert(rules.begin(), rules.end());
    allows[lineno + 1].insert(rules.begin(), rules.end());
  }
}

void RuleContext::report(const std::string& rule, int line,
                         const std::string& message) {
  const auto it = allows.find(line);
  if (it != allows.end() && it->second.count(rule) > 0) return;
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line && f.message == message) return;
  }
  findings.push_back(Finding{rule, file.path, line, message, file.raw_line(line)});
}

// ===========================================================================
// R1: decode-safety

namespace {

constexpr const char* kR1DecodeNames[] = {
    "decode_message", "decode_pdu", "decode_trap_v1", "decode_message_head",
    "decode_varbinds"};
constexpr const char* kR1MemberNames[] = {
    "get_u8",  "get_u16",  "get_u32",   "get_u64",    "get_bytes",
    "get_string", "peek_u8", "peek_u16", "peek_u32",  "peek_u64",
    "peek_bytes", "peek_string", "read_tlv", "expect_tlv", "to_oid",
    "to_value", "to_unsigned", "to_integer", "to_text"};

bool in_list(std::string_view name, const char* const* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (name == names[i]) return true;
  }
  return false;
}

bool catches_cover(const std::vector<std::string>& types,
                   std::string_view wanted) {
  for (const std::string& t : types) {
    if (t == wanted || t == "..." || t == "exception" || t == "runtime_error") {
      return true;
    }
  }
  return false;
}

}  // namespace

void check_r1(RuleContext& ctx) {
  if (ctx.in_file({"common/byte_buffer.h", "common/byte_buffer.cpp",
                   "snmp/ber.h", "snmp/ber.cpp", "snmp/ber_view.h",
                   "snmp/ber_view.cpp", "snmp/pdu.cpp"})) {
    return;
  }
  const std::vector<Token>& tokens = ctx.syntax.tokens;
  // R1_CALL_RE call sites: position/label pairs, positions matching the
  // Python match starts ('.' included for member calls).
  struct Call {
    std::size_t pos;
    std::string label;
  };
  std::vector<Call> calls;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (tok.kind == Token::Kind::kIdent && tok.text == "ber" &&
        i + 3 < tokens.size() && tokens[i + 1].text == "::" &&
        tokens[i + 2].kind == Token::Kind::kIdent &&
        (starts_with(tokens[i + 2].text, "read_") ||
         starts_with(tokens[i + 2].text, "expect_")) &&
        tokens[i + 3].text == "(") {
      std::string label = "ber::";
      label += tokens[i + 2].text;
      calls.push_back({tok.pos, std::move(label)});
      i += 3;
      continue;
    }
    if (tok.kind == Token::Kind::kIdent && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(" &&
        (in_list(tok.text, kR1DecodeNames, std::size(kR1DecodeNames)) ||
         tok.text == "next_varbind")) {
      calls.push_back({tok.pos, std::string(tok.text)});
      ++i;
      continue;
    }
    if (tok.text == "." && tok.kind == Token::Kind::kPunct &&
        i + 2 < tokens.size() &&
        tokens[i + 1].kind == Token::Kind::kIdent &&
        in_list(tokens[i + 1].text, kR1MemberNames, std::size(kR1MemberNames)) &&
        tokens[i + 2].text == "(") {
      std::string label = ".";
      label += tokens[i + 1].text;
      calls.push_back({tok.pos, std::move(label)});
      i += 2;
      continue;
    }
  }
  for (const Call& call : calls) {
    const Function* func = ctx.syntax.innermost_function(call.pos);
    if (func == nullptr) continue;  // declaration or namespace scope
    if (starts_with(func->name, "decode_") || starts_with(func->name, "read_") ||
        starts_with(func->name, "parse_") ||
        starts_with(func->name, "expect_") ||
        starts_with(func->name, "peek_")) {
      continue;
    }
    bool covered = false;
    for (const TryBlock& block : ctx.syntax.try_blocks) {
      if (block.body_start <= call.pos && call.pos < block.body_end &&
          catches_cover(block.catch_types, "BerError") &&
          catches_cover(block.catch_types, "BufferUnderflow")) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      ctx.report(
          "R1", ctx.file.line_of(call.pos),
          "decode call '" + call.label +
              "' not guarded by handlers for both BerError and "
              "BufferUnderflow (PR 3 bug class); wrap it in try/catch or "
              "name the enclosing function decode_*/read_*/parse_* to mark "
              "it a propagating decoder");
    }
  }
}

// ===========================================================================
// R2: OID monotonicity

namespace {

bool in_assign_lhs_class(char c) {
  // ASSIGN_RE lhs class: [\w.\[\]>\-]
  return is_word(c) || c == '.' || c == '[' || c == ']' || c == '>' || c == '-';
}

/// First assignment in [begin,end) whose lhs is a substring of the
/// normalized walk-call arguments (the loop-carried cursor).
std::string find_loop_cursor(std::string_view masked, std::size_t begin,
                             std::size_t end, const std::string& args_norm) {
  for (std::size_t pos = begin; pos < end; ++pos) {
    if (masked[pos] != '=') continue;
    if (pos + 1 < masked.size() && masked[pos + 1] == '=') {
      ++pos;
      continue;
    }
    std::size_t q = pos;
    while (q > begin && is_space(masked[q - 1])) --q;
    std::size_t r = q;
    while (r > begin && in_assign_lhs_class(masked[r - 1])) --r;
    if (r == q) continue;
    const std::string lhs(masked.substr(r, q - r));
    if (std::isdigit(static_cast<unsigned char>(lhs[0])) != 0) continue;
    if (lhs.find("==") != std::string::npos) continue;
    const std::string lhs_norm = normalize(lhs);
    if (!lhs_norm.empty() && args_norm.find(lhs_norm) != std::string::npos) {
      return lhs;
    }
  }
  return "";
}

/// Any line of `scope` naming the cursor's trailing identifier next to a
/// relational operator counts as a monotonicity guard.
bool guarded(std::string_view scope, const std::string& cursor) {
  // Last \w+ run in the cursor expression.
  std::string ident;
  for (std::size_t i = 0; i < cursor.size();) {
    if (is_word(cursor[i])) {
      std::size_t j = i + 1;
      while (j < cursor.size() && is_word(cursor[j])) ++j;
      ident = cursor.substr(i, j - i);
      i = j;
    } else {
      ++i;
    }
  }
  if (ident.empty()) ident = cursor;
  std::size_t start = 0;
  while (start <= scope.size()) {
    std::size_t nl = scope.find('\n', start);
    if (nl == std::string_view::npos) nl = scope.size();
    const std::string_view line = scope.substr(start, nl - start);
    if (line.find(ident) != std::string_view::npos && has_relop(line)) {
      return true;
    }
    if (nl == scope.size()) break;
    start = nl + 1;
  }
  return false;
}

/// Loop-body span following for(...)/while(...): the braced block, or
/// the single statement through its `;`.
bool loop_body_span(std::string_view masked, std::size_t paren_open,
                    std::size_t* begin, std::size_t* end) {
  const std::size_t after = match_paren(masked, paren_open);
  std::size_t i = after;
  while (i < masked.size() &&
         (masked[i] == ' ' || masked[i] == '\t' || masked[i] == '\n')) {
    ++i;
  }
  if (i < masked.size() && masked[i] == '{') {
    *begin = i;
    *end = match_brace(masked, i);
    return true;
  }
  *begin = i;
  const std::size_t semi = masked.find(';', i);
  *end = semi == std::string_view::npos ? masked.size() : semi + 1;
  return true;
}

}  // namespace

void check_r2(RuleContext& ctx) {
  const std::string_view masked = ctx.file.masked;
  const std::vector<Token>& tokens = ctx.syntax.tokens;
  // (a) synchronous walk loops: loop body both calls get_next/get_bulk
  // and assigns (part of) the call's argument -> loop-carried cursor.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent ||
        (tokens[i].text != "for" && tokens[i].text != "while") ||
        tokens[i + 1].text != "(") {
      continue;
    }
    std::size_t begin = 0, end = 0;
    if (!loop_body_span(masked, tokens[i + 1].pos, &begin, &end)) continue;
    for (std::size_t j = i + 2; j < tokens.size(); ++j) {
      if (tokens[j].pos < begin) continue;
      if (tokens[j].pos >= end) break;
      if (tokens[j].kind != Token::Kind::kIdent ||
          (tokens[j].text != "get_next" && tokens[j].text != "get_bulk") ||
          j + 1 >= tokens.size() || tokens[j + 1].text != "(") {
        continue;
      }
      const std::size_t args_begin = tokens[j + 1].pos + 1;
      const std::size_t args_end = match_paren(masked, tokens[j + 1].pos) - 1;
      const std::string args_norm =
          normalize(masked.substr(args_begin, args_end - args_begin));
      const std::string cursor = find_loop_cursor(masked, begin, end, args_norm);
      if (cursor.empty()) continue;
      if (!guarded(masked.substr(begin, end - begin), cursor)) {
        ctx.report(
            "R2", ctx.file.line_of(tokens[j].pos),
            "GETNEXT/GETBULK walk advances cursor '" + cursor +
                "' without a monotonicity guard; compare the returned OID "
                "against the cursor and stop on non-increasing results "
                "(RFC 1905 §4.2.3)");
      }
    }
  }
  // (b) asynchronous walk steps: a range-for over varbinds that copies a
  // whole OID into a cursor must be guarded somewhere in the function.
  // R2_RANGE_FOR_RE: for\s*\(\s*(const\s+)?auto\s*&{0,2}\s*(\w+)\s*:
  //                  \s*[\w.\->]*varbinds\s*\)
  std::size_t scan = 0;
  while (true) {
    const std::size_t f = masked.find("for", scan);
    if (f == std::string_view::npos) break;
    scan = f + 3;
    if (!boundary_before(masked, f) || !boundary_after(masked, f + 3)) continue;
    std::size_t p = skip_ws(masked, f + 3);
    if (p >= masked.size() || masked[p] != '(') continue;
    p = skip_ws(masked, p + 1);
    if (starts_with(masked.substr(p), "const") &&
        p + 5 < masked.size() && is_space(masked[p + 5])) {
      p = skip_ws(masked, p + 5);
    }
    if (!starts_with(masked.substr(p), "auto") ||
        !boundary_after(masked, p + 4)) {
      continue;
    }
    p = skip_ws(masked, p + 4);
    int amps = 0;
    while (p < masked.size() && masked[p] == '&' && amps < 2) {
      ++p;
      ++amps;
    }
    p = skip_ws(masked, p);
    const std::size_t vb_start = p;
    while (p < masked.size() && is_word(masked[p])) ++p;
    if (p == vb_start) continue;
    const std::string vb(masked.substr(vb_start, p - vb_start));
    p = skip_ws(masked, p);
    if (p >= masked.size() || masked[p] != ':') continue;
    p = skip_ws(masked, p + 1);
    // Range chain: [\w.\->]* run that must end in "varbinds".
    const std::size_t chain_start = p;
    while (p < masked.size() &&
           (is_word(masked[p]) || masked[p] == '.' || masked[p] == '-' ||
            masked[p] == '>')) {
      ++p;
    }
    const std::string_view chain = masked.substr(chain_start, p - chain_start);
    if (!ends_with(chain, "varbinds")) continue;
    p = skip_ws(masked, p);
    if (p >= masked.size() || masked[p] != ')') continue;
    const std::size_t open_idx = masked.find('{', p + 1);
    if (open_idx == std::string_view::npos) continue;
    const std::size_t body_end = match_brace(masked, open_idx);
    const std::string_view body = masked.substr(open_idx, body_end - open_idx);
    // am: ([\w.\[\]>\-]+)\s*=\s*VB\.oid\s*;
    const std::string needle = vb + ".oid";
    std::string cursor;
    for (std::size_t n = body.find(needle); n != std::string_view::npos;
         n = body.find(needle, n + 1)) {
      std::size_t after = n + needle.size();
      after = skip_ws(body, after);
      if (after >= body.size() || body[after] != ';') continue;
      std::size_t q = n;
      while (q > 0 && is_space(body[q - 1])) --q;
      if (q == 0 || body[q - 1] != '=') continue;
      --q;
      if (q > 0 && (body[q - 1] == '=' || body[q - 1] == '!' ||
                    body[q - 1] == '<' || body[q - 1] == '>')) {
        continue;
      }
      while (q > 0 && is_space(body[q - 1])) --q;
      std::size_t r = q;
      while (r > 0 && in_assign_lhs_class(body[r - 1])) --r;
      if (r == q) continue;
      cursor = std::string(body.substr(r, q - r));
      break;
    }
    if (cursor.empty()) continue;
    const Function* func = ctx.syntax.innermost_function(f);
    const std::string_view scope =
        func != nullptr
            ? masked.substr(func->body_start, func->body_end - func->body_start)
            : masked;
    if (!guarded(scope, cursor)) {
      ctx.report(
          "R2", ctx.file.line_of(f),
          "walk step copies response OID into cursor '" + cursor +
              "' without a monotonicity guard in the enclosing function; a "
              "repeating or regressing agent would walk forever");
    }
  }
}

// ===========================================================================
// R3: units discipline

namespace {

// R3_CONTEXT_RE: bps|bandwidth|octet|[kmg]bps|byte|\bbits?\b|speed|ifspeed
//              |gap|dispersion|probe|spacing
// (case-insensitive; [kmg]bps and ifspeed are subsumed by bps/speed).
// Probe rate vocabulary counts as bandwidth context: packet-pair and
// train estimators turn inter-probe gaps into rates.
bool bandwidth_words(std::string_view text) {
  const std::string lower = to_lower(text);
  for (const char* needle : {"bps", "bandwidth", "octet", "byte", "speed",
                             "gap", "dispersion", "probe", "spacing"}) {
    if (lower.find(needle) != std::string::npos) return true;
  }
  for (std::size_t pos = lower.find("bit"); pos != std::string::npos;
       pos = lower.find("bit", pos + 1)) {
    if (!boundary_before(lower, pos)) continue;
    std::size_t end = pos + 3;
    if (end < lower.size() && lower[end] == 's') ++end;
    if (boundary_after(lower, end)) return true;
  }
  return false;
}

bool in_r3_literal_class(char c) { return is_word(c) || c == '.' || c == '\''; }

// R3_FACTOR8_RE: [*/]\s*8(\.0+)?(?![\w.']) | (?<![\w.'])8(\.0+)?\s*\*
bool factor8(std::string_view line) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '*' || line[i] == '/') {
      std::size_t p = skip_ws(line, i + 1);
      if (p < line.size() && line[p] == '8') {
        std::size_t end = p + 1;
        if (end < line.size() && line[end] == '.') {
          std::size_t z = end + 1;
          while (z < line.size() && line[z] == '0') ++z;
          if (z > end + 1) end = z;
        }
        if (end >= line.size() || !in_r3_literal_class(line[end])) return true;
        // Backtrack: bare `8` (no .0+) also satisfies the lookahead.
        if (p + 1 >= line.size() || !in_r3_literal_class(line[p + 1])) {
          return true;
        }
      }
    }
    if (line[i] == '8' && (i == 0 || !in_r3_literal_class(line[i - 1]))) {
      std::size_t end = i + 1;
      if (end < line.size() && line[end] == '.') {
        std::size_t z = end + 1;
        while (z < line.size() && line[z] == '0') ++z;
        if (z > end + 1) {
          const std::size_t after = skip_ws(line, z);
          if (after < line.size() && line[after] == '*') return true;
        }
      }
      const std::size_t after = skip_ws(line, end);
      if (after < line.size() && line[after] == '*') return true;
    }
  }
  return false;
}

// R3_DURATION_RE: \bk(Nano|Micro|Milli)second\b|\bkSecond\b
//               |\b(nano|micro|milli)?seconds\s*\(
// Duration arithmetic like `8 * kMillisecond` or `seconds(8)` is time
// math, not a unit conversion — such lines are exempt from R3(a).
bool duration_math(std::string_view line) {
  for (const char* name :
       {"kNanosecond", "kMicrosecond", "kMillisecond", "kSecond"}) {
    const std::string_view needle(name);
    for (std::size_t pos = line.find(needle); pos != std::string_view::npos;
         pos = line.find(needle, pos + 1)) {
      const bool before_ok = pos == 0 || !is_word(line[pos - 1]);
      const std::size_t end = pos + needle.size();
      const bool after_ok = end >= line.size() || !is_word(line[end]);
      if (before_ok && after_ok) return true;
    }
  }
  for (const char* name :
       {"nanoseconds", "microseconds", "milliseconds", "seconds"}) {
    const std::string_view needle(name);
    for (std::size_t pos = line.find(needle); pos != std::string_view::npos;
         pos = line.find(needle, pos + 1)) {
      if (pos > 0 && is_word(line[pos - 1])) continue;
      const std::size_t after = skip_ws(line, pos + needle.size());
      if (after < line.size() && line[after] == '(') return true;
    }
  }
  return false;
}

// R3_DECIMAL_RE candidates (longest-first), boundaries (?<![\w.'])
// and (?![\w.']).
bool decimal_multiplier(std::string_view line) {
  static const char* kLiterals[] = {
      "1'000'000'000", "1000000000", "10'000'000", "1'000'000", "1000000",
      "1'000", "1000.0", "8.0", "1e3", "1e6", "1e9", "8e3", "8e6", "8e9",
      // Negative exponents scale raw nanosecond gaps in probe rate math.
      "1e-3", "1e-6", "1e-9", "8e-3", "8e-6", "8e-9"};
  for (const char* lit : kLiterals) {
    const std::string_view needle(lit);
    for (std::size_t pos = line.find(needle); pos != std::string_view::npos;
         pos = line.find(needle, pos + 1)) {
      const bool before_ok = pos == 0 || !in_r3_literal_class(line[pos - 1]);
      const std::size_t end = pos + needle.size();
      const bool after_ok = end >= line.size() || !in_r3_literal_class(line[end]);
      if (before_ok && after_ok) return true;
    }
  }
  return false;
}

// R3_COUNTER_ID: \w*(in|out)_(octets|packets|discards)\w* | \bsys_uptime\w*
//              | \bif(HC)?(In|Out)Octets\w*
bool is_counter_ident(std::string_view word) {
  for (const char* needle :
       {"in_octets", "out_octets", "in_packets", "out_packets", "in_discards",
        "out_discards"}) {
    if (word.find(needle) != std::string_view::npos) return true;
  }
  if (starts_with(word, "sys_uptime")) return true;
  for (const char* prefix :
       {"ifInOctets", "ifOutOctets", "ifHCInOctets", "ifHCOutOctets"}) {
    if (starts_with(word, prefix)) return true;
  }
  return false;
}

// R3_COUNTER_SUB_RE: (counter)\s*-(?!>) | (?<!-)-\s*(counter)
bool counter_subtraction(std::string_view line) {
  for (std::size_t i = 0; i < line.size();) {
    if (!is_word(line[i])) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < line.size() && is_word(line[j])) ++j;
    const std::string_view word = line.substr(i, j - i);
    if (is_counter_ident(word)) {
      const std::size_t after = skip_ws(line, j);
      if (after < line.size() && line[after] == '-' &&
          (after + 1 >= line.size() || line[after + 1] != '>')) {
        return true;
      }
    }
    i = j;
  }
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '-' || (i > 0 && line[i - 1] == '-')) continue;
    const std::size_t p = skip_ws(line, i + 1);
    std::size_t j = p;
    while (j < line.size() && is_word(line[j])) ++j;
    if (j > p && is_counter_ident(line.substr(p, j - p))) return true;
  }
  return false;
}

}  // namespace

void check_r3(RuleContext& ctx) {
  const bool units_ok = ctx.in_file({"common/units.h", "common/sim_time.h"});
  const bool counters_ok =
      ctx.in_file({"monitor/counter_math.h", "monitor/counter_math.cpp"});
  std::size_t offset = 0;
  for (std::size_t i = 0; i < ctx.file.masked_lines.size(); ++i) {
    const std::string& mline = ctx.file.masked_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (!units_ok) {
      // Context window: the innermost function's body plus up to 200
      // chars of declaration ahead of it; the line itself otherwise.
      bool in_context = false;
      const Function* func = ctx.syntax.innermost_function(offset);
      if (func == nullptr) {
        in_context = bandwidth_words(mline);
      } else {
        const std::size_t start =
            func->body_start > 200 ? func->body_start - 200 : 0;
        in_context = bandwidth_words(
            std::string_view(ctx.file.masked).substr(start, func->body_end - start));
      }
      if (in_context && mline.find(">>") == std::string::npos &&
          !duration_math(mline) && factor8(mline)) {
        ctx.report("R3", lineno,
                   "raw factor-of-8 bit/byte conversion; use "
                   "to_bits_per_second/to_bytes_per_second/kBitsPerByte from "
                   "common/units.h (ifSpeed is bits/s, ifOctets are bytes — "
                   "paper Table 1)");
      }
      if (in_context && decimal_multiplier(mline)) {
        ctx.report("R3", lineno,
                   "raw decimal bandwidth multiplier; use kKbps/kMbps/kGbps "
                   "or the conversion helpers in common/units.h (gap-to-rate "
                   "math converts via to_seconds/from_seconds)");
      }
    }
    if (!counters_ok && counter_subtraction(mline)) {
      ctx.report("R3", lineno,
                 "naked subtraction of a cumulative MIB counter; "
                 "Counter32/TimeTicks wrap and must be differenced via "
                 "monitor/counter_math (paper §3.1)");
    }
    offset += mline.size() + 1;
  }
}

// ===========================================================================
// R4: sim-time purity

namespace {

/// \bNAME\s*\( — word boundary before, call parens after.
bool word_call(std::string_view line, std::string_view name) {
  for (std::size_t pos = line.find(name); pos != std::string_view::npos;
       pos = line.find(name, pos + 1)) {
    if (!boundary_before(line, pos)) continue;
    const std::size_t p = skip_ws(line, pos + name.size());
    if (p < line.size() && line[p] == '(') return true;
  }
  return false;
}

bool contains_bounded(std::string_view line, std::string_view needle) {
  for (std::size_t pos = line.find(needle); pos != std::string_view::npos;
       pos = line.find(needle, pos + 1)) {
    if (boundary_before(line, pos) &&
        boundary_after(line, pos + needle.size())) {
      return true;
    }
  }
  return false;
}

}  // namespace

void check_r4(RuleContext& ctx) {
  if (ctx.in_file({"common/sim_time.h", "common/sim_time.cpp", "common/rng.h",
                   "common/rng.cpp"})) {
    return;
  }
  for (std::size_t i = 0; i < ctx.file.masked_lines.size(); ++i) {
    const std::string& mline = ctx.file.masked_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    auto flag = [&](const std::string& what) {
      ctx.report("R4", lineno,
                 what + " breaks deterministic, resumable simulation");
    };
    for (const char* clock :
         {"std::chrono::system_clock", "std::chrono::steady_clock",
          "std::chrono::high_resolution_clock"}) {
      if (contains_bounded(mline, clock)) {
        flag("wall clock (use common/sim_time SimTime)");
        break;
      }
    }
    if (word_call(mline, "gettimeofday")) {
      flag("gettimeofday (use common/sim_time)");
    }
    if (word_call(mline, "clock_gettime")) {
      flag("clock_gettime (use common/sim_time)");
    }
    // (?<![\w:.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)
    {
      std::size_t arg = 0;
      bool hit = false;
      for (std::size_t pos = mline.find("time"); pos != std::string::npos;
           pos = mline.find("time", pos + 1)) {
        if (pos > 0) {
          const char prev = mline[pos - 1];
          if (is_word(prev) || prev == ':' || prev == '.' || prev == '>') {
            continue;
          }
        }
        arg = skip_ws(mline, pos + 4);
        if (arg >= mline.size() || mline[arg] != '(') continue;
        std::size_t p = skip_ws(mline, arg + 1);
        for (const char* a : {"NULL", "nullptr", "0"}) {
          const std::string_view sv(a);
          if (starts_with(std::string_view(mline).substr(p), sv)) {
            const std::size_t cand = skip_ws(mline, p + sv.size());
            if (cand < mline.size() && mline[cand] == ')') {
              p = cand;
              break;
            }
          }
        }
        if (p < mline.size() && mline[p] == ')') {
          hit = true;
          break;
        }
      }
      if (hit) flag("time() (use common/sim_time)");
    }
    // (?<![\w:.>])s?rand\s*\( | \bstd::s?rand\b
    {
      bool hit = false;
      for (std::size_t pos = mline.find("rand"); pos != std::string::npos;
           pos = mline.find("rand", pos + 1)) {
        std::size_t start = pos;
        if (start > 0 && mline[start - 1] == 's') --start;
        if (start > 0) {
          const char prev = mline[start - 1];
          if (is_word(prev) || prev == ':' || prev == '.' || prev == '>') {
            continue;
          }
        }
        const std::size_t p = skip_ws(mline, pos + 4);
        if (p < mline.size() && mline[p] == '(') {
          hit = true;
          break;
        }
      }
      if (!hit) {
        for (const char* name : {"std::rand", "std::srand"}) {
          if (contains_bounded(mline, name)) {
            hit = true;
            break;
          }
        }
      }
      if (hit) flag("rand()/srand() (use common/rng Xoshiro256)");
    }
    if (contains_bounded(mline, "std::random_device")) {
      flag("std::random_device (use an explicit seed and common/rng)");
    }
    if (contains_bounded(mline, "std::mt19937_64") ||
        contains_bounded(mline, "std::mt19937") ||
        contains_bounded(mline, "std::default_random_engine")) {
      flag("implicit std RNG (use common/rng Xoshiro256)");
    }
  }
  // Including the headers at all is suspicious enough to flag in raw text.
  for (std::size_t i = 0; i < ctx.file.lines.size(); ++i) {
    const std::string& line = ctx.file.lines[i];
    std::size_t p = skip_ws(line, 0);
    if (p >= line.size() || line[p] != '#') continue;
    p = skip_ws(line, p + 1);
    if (!starts_with(std::string_view(line).substr(p), "include")) continue;
    p = skip_ws(line, p + 7);
    if (p >= line.size() || line[p] != '<') continue;
    const std::string_view rest = std::string_view(line).substr(p + 1);
    if (starts_with(rest, "ctime>") || starts_with(rest, "random>") ||
        starts_with(rest, "sys/time.h>")) {
      ctx.report("R4", static_cast<int>(i) + 1,
                 "wall-clock/ambient-randomness header include; only "
                 "common/sim_time and common/rng may provide time and "
                 "randomness");
    }
  }
}

// ===========================================================================
// R5: module purity

namespace {

/// R5_MODULE_CLASS_RE over the token stream: a Module base-clause or a
/// constructor-initialiser delegating to Module(...).
bool defines_module_subclass(const std::vector<Token>& tokens) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == Token::Kind::kIdent && tokens[i].text == "class" &&
        i + 2 < tokens.size() && tokens[i + 1].kind == Token::Kind::kIdent) {
      std::size_t j = i + 2;
      if (j < tokens.size() && tokens[j].text == "final") ++j;
      if (j < tokens.size() && tokens[j].text == ":") {
        ++j;
        if (j < tokens.size() && (tokens[j].text == "public" ||
                                  tokens[j].text == "private" ||
                                  tokens[j].text == "protected")) {
          ++j;
        }
        if (j + 1 < tokens.size() && tokens[j].text == "mon" &&
            tokens[j + 1].text == "::") {
          j += 2;
        }
        if (j < tokens.size() && tokens[j].text == "Module") return true;
      }
    }
    if (tokens[i].text == ")" && i + 2 < tokens.size() &&
        tokens[i + 1].text == ":") {
      std::size_t j = i + 2;
      if (j + 1 < tokens.size() && tokens[j].text == "mon" &&
          tokens[j + 1].text == "::") {
        j += 2;
      }
      if (j + 1 < tokens.size() && tokens[j].text == "Module" &&
          tokens[j + 1].text == "(") {
        return true;
      }
    }
  }
  return false;
}

// \bsnmp\s*:: | \bSnmpClient\b
bool touches_snmp(std::string_view line) {
  for (std::size_t pos = line.find("snmp"); pos != std::string_view::npos;
       pos = line.find("snmp", pos + 1)) {
    if (!boundary_before(line, pos)) continue;
    const std::size_t p = skip_ws(line, pos + 4);
    if (p + 1 < line.size() && line[p] == ':' && line[p + 1] == ':') {
      return true;
    }
  }
  return contains_bounded(line, "SnmpClient");
}

// \bStatsDb\s*[&*] (and the const-qualified variant)
bool db_handle(std::string_view line, bool* has_const) {
  *has_const = false;
  bool found = false;
  for (std::size_t pos = line.find("StatsDb"); pos != std::string_view::npos;
       pos = line.find("StatsDb", pos + 1)) {
    if (!boundary_before(line, pos)) continue;
    const std::size_t p = skip_ws(line, pos + 7);
    if (p >= line.size() || (line[p] != '&' && line[p] != '*')) continue;
    found = true;
    // const\s+StatsDb — the const must directly precede.
    std::size_t q = pos;
    while (q > 0 && is_space(line[q - 1])) --q;
    if (q >= 5 && line.substr(q - 5, 5) == "const" &&
        boundary_before(line, q - 5) && q != pos) {
      *has_const = true;
    }
  }
  return found;
}

// \bconst_cast\s*<\s*(mon\s*::\s*)?StatsDb\b
bool db_const_cast(std::string_view line) {
  for (std::size_t pos = line.find("const_cast");
       pos != std::string_view::npos; pos = line.find("const_cast", pos + 1)) {
    if (!boundary_before(line, pos)) continue;
    std::size_t p = skip_ws(line, pos + 10);
    if (p >= line.size() || line[p] != '<') continue;
    p = skip_ws(line, p + 1);
    if (starts_with(line.substr(p), "mon")) {
      const std::size_t q = skip_ws(line, p + 3);
      if (q + 1 < line.size() && line[q] == ':' && line[q + 1] == ':') {
        p = skip_ws(line, q + 2);
      }
    }
    if (starts_with(line.substr(p), "StatsDb") &&
        boundary_after(line, p + 7)) {
      return true;
    }
  }
  return false;
}

// (samples\(\)|\w*stats_db\w*|\w*_db)\s*(\.|->)\s*(update|attach_metrics)\s*\(
bool db_mutator_call(std::string_view line) {
  for (const char* method : {"update", "attach_metrics"}) {
    const std::string_view m(method);
    for (std::size_t pos = line.find(m); pos != std::string_view::npos;
         pos = line.find(m, pos + 1)) {
      if (!boundary_before(line, pos)) continue;
      const std::size_t after = skip_ws(line, pos + m.size());
      if (after >= line.size() || line[after] != '(') continue;
      // Walk back over \s* then `.` or `->` then \s* to the receiver.
      std::size_t q = pos;
      while (q > 0 && is_space(line[q - 1])) --q;
      if (q >= 1 && line[q - 1] == '.') {
        --q;
      } else if (q >= 2 && line[q - 2] == '-' && line[q - 1] == '>') {
        q -= 2;
      } else {
        continue;
      }
      while (q > 0 && is_space(line[q - 1])) --q;
      // Receiver: samples() …
      if (q >= 1 && line[q - 1] == ')') {
        std::size_t r = q - 1;
        while (r > 0 && is_space(line[r - 1])) --r;
        if (r >= 1 && line[r - 1] == '(') {
          std::size_t s = r - 1;
          while (s > 0 && is_space(line[s - 1])) --s;
          if (s >= 7 && line.substr(s - 7, 7) == "samples") return true;
        }
        continue;
      }
      // … or an identifier containing stats_db / ending in _db.
      std::size_t r = q;
      while (r > 0 && is_word(line[r - 1])) --r;
      if (r == q) continue;
      const std::string_view receiver = line.substr(r, q - r);
      if (receiver.find("stats_db") != std::string_view::npos ||
          ends_with(receiver, "_db")) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void check_r5(RuleContext& ctx) {
  if (ctx.in_file({"monitor/module.h", "monitor/module.cpp", "monitor/qos.h",
                   "monitor/qos.cpp", "monitor/distributed.h",
                   "monitor/distributed.cpp"})) {
    return;
  }
  const bool is_subject =
      ctx.file.path.find("monitor/modules/") != std::string::npos ||
      defines_module_subclass(ctx.syntax.tokens);
  if (!is_subject) return;
  for (std::size_t i = 0; i < ctx.file.lines.size(); ++i) {
    // \s*#\s*include\s*"snmp/ (anchored, raw line)
    const std::string& line = ctx.file.lines[i];
    std::size_t p = skip_ws(line, 0);
    if (p < line.size() && line[p] == '#') {
      p = skip_ws(line, p + 1);
      if (starts_with(std::string_view(line).substr(p), "include")) {
        p = skip_ws(line, p + 7);
        if (starts_with(std::string_view(line).substr(p), "\"snmp/")) {
          ctx.report("R5", static_cast<int>(i) + 1,
                     "measurement module includes an SNMP header; modules "
                     "consume the sample stream, polling belongs to the core");
        }
      }
    }
  }
  for (std::size_t i = 0; i < ctx.file.masked_lines.size(); ++i) {
    const std::string& mline = ctx.file.masked_lines[i];
    const int lineno = static_cast<int>(i) + 1;
    if (touches_snmp(mline)) {
      ctx.report("R5", lineno,
                 "measurement module reaches the SNMP layer; modules consume "
                 "the sample stream, polling belongs to the core");
    }
    bool has_const = false;
    if (db_handle(mline, &has_const) && !has_const) {
      ctx.report("R5", lineno,
                 "measurement module holds a mutable StatsDb handle; modules "
                 "read rates via the const ModuleCore::samples() surface "
                 "only");
    }
    if (db_const_cast(mline)) {
      ctx.report("R5", lineno,
                 "const_cast around the StatsDb; the core ingests counters, "
                 "modules never write them back");
    }
    if (db_mutator_call(mline)) {
      ctx.report("R5", lineno,
                 "measurement module calls a StatsDb mutator; sample "
                 "ingestion is the core's job");
    }
  }
}

}  // namespace netqos::analyze
