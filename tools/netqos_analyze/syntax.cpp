// Syntax layer: tokenizer plus best-effort discovery of function bodies,
// try/catch blocks, switch statements, and enum definitions over masked
// text. Function and try-block discovery are ports of netqos_lint.py's
// finders, quirks included (e.g. a constructor with a parenthesized
// member-initialiser list is not recognised as a function body) — R1-R5
// parity on the fixture corpus depends on identical spans.
#include "analyze.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>

namespace netqos::analyze {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

const std::array<std::string_view, 22> kMultiCharPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="};

constexpr std::array<std::string_view, 16> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "new", "delete", "throw", "do", "else", "case", "static_assert",
    "decltype"};

bool is_control_keyword(std::string_view name) {
  return std::find(kControlKeywords.begin(), kControlKeywords.end(), name) !=
         kControlKeywords.end();
}

}  // namespace

std::vector<Token> tokenize(std::string_view masked) {
  std::vector<Token> tokens;
  tokens.reserve(masked.size() / 4);
  std::size_t i = 0;
  const std::size_t n = masked.size();
  while (i < n) {
    const char c = masked[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(masked[j])) ++j;
      tokens.push_back({Token::Kind::kIdent, masked.substr(i, j - i), i});
      i = j;
      continue;
    }
    if (is_digit(c)) {
      // pp-number: digits, idents, dots, digit separators, exponent signs.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = masked[j];
        if (is_ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (masked[j - 1] == 'e' || masked[j - 1] == 'E' ||
                    masked[j - 1] == 'p' || masked[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      tokens.push_back({Token::Kind::kNumber, masked.substr(i, j - i), i});
      i = j;
      continue;
    }
    std::size_t len = 1;
    for (const std::string_view op : kMultiCharPunct) {
      if (masked.substr(i, op.size()) == op) {
        len = op.size();
        break;
      }
    }
    tokens.push_back({Token::Kind::kPunct, masked.substr(i, len), i});
    i += len;
  }
  return tokens;
}

std::size_t match_brace(std::string_view text, std::size_t open_idx) {
  int depth = 0;
  for (std::size_t i = open_idx; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      if (--depth == 0) return i + 1;
    }
  }
  return text.size();
}

std::size_t match_paren(std::string_view text, std::size_t open_idx) {
  int depth = 0;
  for (std::size_t i = open_idx; i < text.size(); ++i) {
    if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return text.size();
}

const Function* Syntax::innermost_function(std::size_t offset) const {
  const Function* best = nullptr;
  for (const Function& f : functions) {
    if (f.body_start <= offset && offset < f.body_end) {
      if (best == nullptr ||
          (f.body_end - f.body_start) < (best->body_end - best->body_start)) {
        best = &f;
      }
    }
  }
  return best;
}

namespace {

/// NAME(args) chains followed (within 400 chars of decoration that never
/// hits `;,)=}`) by `{`. Mirrors netqos_lint.py find_functions.
void find_functions(const SourceFile& file, const std::vector<Token>& tokens,
                    std::vector<Function>& out) {
  const std::string_view masked = file.masked;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    if (tokens[t].kind != Token::Kind::kIdent) continue;
    // Maximal qualified chain: IDENT (:: ~? IDENT)*
    std::size_t last = t;
    std::string qualified(tokens[t].text);
    while (last + 1 < tokens.size() && tokens[last + 1].text == "::") {
      std::size_t next = last + 2;
      if (next < tokens.size() && tokens[next].text == "~") ++next;
      if (next >= tokens.size() || tokens[next].kind != Token::Kind::kIdent) break;
      qualified += "::";
      if (tokens[last + 2].text == "~") qualified += "~";
      qualified += tokens[next].text;
      last = next;
    }
    if (last + 1 >= tokens.size() || tokens[last + 1].text != "(") continue;
    const std::string name(tokens[last].text);
    if (is_control_keyword(name)) {
      t = last;
      continue;
    }
    const std::size_t close = match_paren(masked, tokens[last + 1].pos);
    if (close >= masked.size()) continue;
    const std::size_t limit = std::min(masked.size(), close + 400);
    for (std::size_t i = close; i < limit; ++i) {
      const char c = masked[i];
      if (c == '{') {
        out.push_back(Function{name, qualified, i, match_brace(masked, i)});
        break;
      }
      if (c == ';' || c == ',' || c == ')' || c == '=' || c == '}') break;
    }
    t = last + 1;  // resume after the `(`, like finditer
  }
}

void find_try_blocks(const SourceFile& file, std::vector<TryBlock>& out) {
  const std::string_view masked = file.masked;
  std::size_t pos = 0;
  while (true) {
    const std::size_t t = masked.find("try", pos);
    if (t == std::string_view::npos) break;
    pos = t + 3;
    if (t > 0 && is_ident_char(masked[t - 1])) continue;
    if (t + 3 < masked.size() && is_ident_char(masked[t + 3])) continue;
    // Only whitespace may separate `try` from its `{`.
    std::size_t open_idx = t + 3;
    while (open_idx < masked.size() &&
           std::isspace(static_cast<unsigned char>(masked[open_idx])) != 0) {
      ++open_idx;
    }
    if (open_idx >= masked.size() || masked[open_idx] != '{') continue;
    TryBlock block;
    block.body_start = open_idx;
    block.body_end = match_brace(masked, open_idx);
    std::size_t scan = block.body_end;
    while (true) {
      std::size_t c = scan;
      while (c < masked.size() &&
             std::isspace(static_cast<unsigned char>(masked[c])) != 0) {
        ++c;
      }
      if (masked.substr(c, 5) != "catch" ||
          (c + 5 < masked.size() && is_ident_char(masked[c + 5]))) {
        break;
      }
      std::size_t paren = c + 5;
      while (paren < masked.size() &&
             std::isspace(static_cast<unsigned char>(masked[paren])) != 0) {
        ++paren;
      }
      if (paren >= masked.size() || masked[paren] != '(') break;
      const std::size_t paren_end = match_paren(masked, paren);
      std::string decl(masked.substr(paren + 1, paren_end - paren - 2));
      const std::string trimmed = normalize(decl);
      if (trimmed == "...") {
        block.catch_types.push_back("...");
      } else {
        // Last identifier is usually the variable; the type is the one
        // before it (or the only one), const/volatile/std filtered out.
        std::vector<std::string> ids;
        for (std::size_t i = 0; i < decl.size();) {
          if (is_ident_start(decl[i])) {
            std::size_t j = i + 1;
            while (j < decl.size() && is_ident_char(decl[j])) ++j;
            const std::string id = decl.substr(i, j - i);
            if (id != "const" && id != "volatile" && id != "std") {
              ids.push_back(id);
            }
            i = j;
          } else {
            ++i;
          }
        }
        if (ids.size() >= 2) {
          block.catch_types.push_back(ids[ids.size() - 2]);
        } else if (!ids.empty()) {
          block.catch_types.push_back(ids.back());
        } else {
          block.catch_types.push_back("");
        }
      }
      const std::size_t body_open = masked.find('{', paren_end);
      if (body_open == std::string_view::npos) break;
      scan = match_brace(masked, body_open);
    }
    out.push_back(std::move(block));
  }
}

struct ClassSpan {
  std::string name;
  std::size_t body_start = 0;
  std::size_t body_end = 0;
};

/// class/struct definitions, for qualifying nested enums (Event::Kind).
void find_classes(const SourceFile& file, const std::vector<Token>& tokens,
                  std::vector<ClassSpan>& out) {
  const std::string_view masked = file.masked;
  for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
    if (tokens[t].kind != Token::Kind::kIdent ||
        (tokens[t].text != "class" && tokens[t].text != "struct")) {
      continue;
    }
    if (t > 0 && tokens[t - 1].text == "enum") continue;
    if (tokens[t + 1].kind != Token::Kind::kIdent) continue;
    const std::string name(tokens[t + 1].text);
    // Scan forward for `{` before any `;` / `(` (fwd decls, fn params).
    for (std::size_t j = t + 2; j < tokens.size(); ++j) {
      const std::string_view text = tokens[j].text;
      if (text == "{") {
        out.push_back(
            ClassSpan{name, tokens[j].pos, match_brace(masked, tokens[j].pos)});
        break;
      }
      if (text == ";" || text == "(" || text == ")" || text == "=") break;
    }
  }
}

void find_enums(const SourceFile& file, const std::vector<Token>& tokens,
                const std::vector<ClassSpan>& classes,
                std::vector<EnumDef>& out) {
  const std::string_view masked = file.masked;
  for (std::size_t t = 0; t < tokens.size(); ++t) {
    if (tokens[t].kind != Token::Kind::kIdent || tokens[t].text != "enum") {
      continue;
    }
    std::size_t j = t + 1;
    if (j < tokens.size() &&
        (tokens[j].text == "class" || tokens[j].text == "struct")) {
      ++j;
    }
    if (j >= tokens.size() || tokens[j].kind != Token::Kind::kIdent) continue;
    EnumDef def;
    def.name = std::string(tokens[j].text);
    const std::size_t name_pos = tokens[j].pos;
    ++j;
    if (j < tokens.size() && tokens[j].text == ":") {
      ++j;
      while (j < tokens.size() && tokens[j].text != "{" &&
             tokens[j].text != ";") {
        if (!def.underlying.empty()) def.underlying += " ";
        def.underlying += std::string(tokens[j].text);
        ++j;
      }
    }
    if (j >= tokens.size() || tokens[j].text != "{") continue;  // fwd decl
    const std::size_t body_end = match_brace(masked, tokens[j].pos);
    // Enumerators: identifiers at comma positions, initialisers skipped.
    bool expect_name = true;
    int depth = 0;
    for (std::size_t k = j + 1; k < tokens.size() && tokens[k].pos < body_end;
         ++k) {
      const std::string_view text = tokens[k].text;
      if (text == "(" || text == "{" || text == "<") ++depth;
      if (text == ")" || text == "}" || text == ">") --depth;
      if (depth < 0) break;
      if (expect_name && tokens[k].kind == Token::Kind::kIdent) {
        def.enumerators.push_back(std::string(text));
        expect_name = false;
      } else if (text == "," && depth == 0) {
        expect_name = true;
      }
    }
    def.qualified = def.name;
    // Qualify with the innermost enclosing class chain, outermost first.
    std::vector<std::string> scopes;
    for (const ClassSpan& cls : classes) {
      if (cls.body_start <= name_pos && name_pos < cls.body_end) {
        scopes.push_back(cls.name);
      }
    }
    if (!scopes.empty()) {
      std::string qualified;
      for (const std::string& scope : scopes) qualified += scope + "::";
      def.qualified = qualified + def.name;
    }
    out.push_back(std::move(def));
  }
}

void find_switches(const SourceFile& file, const std::vector<Token>& tokens,
                   std::vector<SwitchStmt>& out) {
  const std::string_view masked = file.masked;
  for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
    if (tokens[t].kind != Token::Kind::kIdent || tokens[t].text != "switch" ||
        tokens[t + 1].text != "(") {
      continue;
    }
    SwitchStmt sw;
    sw.keyword_pos = tokens[t].pos;
    sw.cond_start = tokens[t + 1].pos + 1;
    sw.cond_end = match_paren(masked, tokens[t + 1].pos) - 1;
    std::size_t open_idx = sw.cond_end + 1;
    while (open_idx < masked.size() &&
           std::isspace(static_cast<unsigned char>(masked[open_idx])) != 0) {
      ++open_idx;
    }
    if (open_idx >= masked.size() || masked[open_idx] != '{') continue;
    sw.body_start = open_idx;
    sw.body_end = match_brace(masked, open_idx);
    out.push_back(sw);
  }
  // Label scan: a label belongs to this switch unless a nested switch's
  // body contains it.
  for (SwitchStmt& sw : out) {
    auto in_nested = [&](std::size_t pos) {
      for (const SwitchStmt& other : out) {
        if (&other == &sw) continue;
        if (other.body_start > sw.body_start && other.body_end <= sw.body_end &&
            other.body_start <= pos && pos < other.body_end) {
          return true;
        }
      }
      return false;
    };
    for (std::size_t t = 0; t < tokens.size(); ++t) {
      const std::size_t pos = tokens[t].pos;
      if (pos <= sw.body_start || pos >= sw.body_end || in_nested(pos)) continue;
      if (tokens[t].kind == Token::Kind::kIdent && tokens[t].text == "case") {
        ++sw.case_label_count;
        // Label tokens run to the single `:` terminator.
        std::vector<std::string_view> idents;
        std::size_t k = t + 1;
        for (; k < tokens.size() && tokens[k].pos < sw.body_end; ++k) {
          if (tokens[k].text == ":") break;
          if (tokens[k].kind == Token::Kind::kIdent) {
            idents.push_back(tokens[k].text);
          }
        }
        for (const std::string_view id : idents) {
          if (id.substr(0, 4) == "kTag") sw.has_ber_tag_cases = true;
        }
        if (idents.size() >= 2) {
          std::string qualifier;
          for (std::size_t q = 0; q + 1 < idents.size(); ++q) {
            if (!qualifier.empty()) qualifier += "::";
            qualifier += std::string(idents[q]);
          }
          if (sw.case_qualifier.empty()) sw.case_qualifier = qualifier;
          sw.case_enumerators.insert(std::string(idents.back()));
        }
        t = k;
      } else if (tokens[t].kind == Token::Kind::kIdent &&
                 tokens[t].text == "default" && t + 1 < tokens.size() &&
                 tokens[t + 1].text == ":") {
        sw.has_default = true;
        sw.default_start = tokens[t + 1].pos + 1;
        sw.default_end = sw.body_end;
        for (std::size_t k = t + 2; k < tokens.size(); ++k) {
          const std::size_t kpos = tokens[k].pos;
          if (kpos >= sw.body_end) break;
          if (in_nested(kpos)) continue;
          if (tokens[k].kind == Token::Kind::kIdent &&
              (tokens[k].text == "case" || tokens[k].text == "default")) {
            sw.default_end = kpos;
            break;
          }
        }
      }
    }
  }
}

}  // namespace

bool EnumDef::is_wire() const {
  return underlying.find("uint8_t") != std::string::npos;
}

Syntax parse_syntax(const SourceFile& file) {
  Syntax syntax;
  syntax.tokens = tokenize(file.masked);
  find_functions(file, syntax.tokens, syntax.functions);
  find_try_blocks(file, syntax.try_blocks);
  std::vector<ClassSpan> classes;
  find_classes(file, syntax.tokens, classes);
  find_enums(file, syntax.tokens, classes, syntax.enums);
  find_switches(file, syntax.tokens, syntax.switches);
  return syntax;
}

void EnumRegistry::add(const EnumDef& def) {
  by_name.emplace(def.name, def);
}

const EnumDef* EnumRegistry::resolve(const std::string& qualifier,
                                     const std::set<std::string>& used) const {
  if (qualifier.empty()) return nullptr;
  // Last qualifier component is the enum name ("Event::Kind" -> "Kind").
  const std::size_t sep = qualifier.rfind("::");
  const std::string last =
      sep == std::string::npos ? qualifier : qualifier.substr(sep + 2);
  const EnumDef* best = nullptr;
  for (auto [it, end] = by_name.equal_range(last); it != end; ++it) {
    const EnumDef& def = it->second;
    const std::string& q = def.qualified;
    const bool suffix_match =
        q == qualifier ||
        (q.size() > qualifier.size() &&
         q.compare(q.size() - qualifier.size(), qualifier.size(), qualifier) ==
             0 &&
         q[q.size() - qualifier.size() - 1] == ':');
    if (!suffix_match) continue;
    bool covers_used = true;
    for (const std::string& name : used) {
      if (std::find(def.enumerators.begin(), def.enumerators.end(), name) ==
          def.enumerators.end()) {
        covers_used = false;
        break;
      }
    }
    if (!covers_used) continue;
    // Prefer a wire enum when several match (distinct types sharing a
    // last name, e.g. Event::Kind vs QosEvent::Kind).
    if (best == nullptr || (def.is_wire() && !best->is_wire())) best = &it->second;
  }
  return best;
}

void EnumRegistry::finalize() {
  std::uint64_t h = fnv1a("enum-registry-v1");
  for (const auto& [name, def] : by_name) {
    h = fnv1a(def.qualified, h);
    h = fnv1a("|", h);
    h = fnv1a(def.underlying, h);
    for (const std::string& e : def.enumerators) {
      h = fnv1a(e, h);
      h = fnv1a(",", h);
    }
    h = fnv1a(";", h);
  }
  content_hash = h;
}

}  // namespace netqos::analyze
