// CLI driver. Mirrors tools/netqos_lint/netqos_lint.py's interface and
// output contract (path:line: [RULE] message, exit 0/1/2, baseline
// gating) so scripts/lint.sh can diff the two on the fixture corpus,
// and adds what the Python tool lacks: --sarif and a --cache for warm
// incremental runs.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "analyze.h"

namespace fs = std::filesystem;
using namespace netqos::analyze;

namespace {

struct Options {
  std::vector<std::string> paths;
  std::string root = ".";
  std::string baseline_path;
  std::string sarif_path;
  std::string cache_path;
  bool update_baseline = false;
  bool show_baselined = false;
  bool list_rules = false;
  RuleOptions rules;
};

int usage_error(const std::string& message) {
  std::cerr << "netqos-analyze: error: " << message << "\n"
            << "usage: netqos_analyze [paths...] [--root DIR] "
               "[--baseline FILE] [--update-baseline] [--show-baselined]\n"
            << "                      [--sarif FILE] [--cache FILE] "
               "[--rules R1,R2,...] [--list-rules]\n";
  return 2;
}

bool parse_args(int argc, char** argv, Options& opts, int& exit_code) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        exit_code = usage_error(std::string(flag) + " needs a value");
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = value("--root");
      if (v == nullptr) return false;
      opts.root = v;
    } else if (arg == "--baseline") {
      const char* v = value("--baseline");
      if (v == nullptr) return false;
      opts.baseline_path = v;
    } else if (arg == "--sarif") {
      const char* v = value("--sarif");
      if (v == nullptr) return false;
      opts.sarif_path = v;
    } else if (arg == "--cache") {
      const char* v = value("--cache");
      if (v == nullptr) return false;
      opts.cache_path = v;
    } else if (arg == "--rules") {
      const char* v = value("--rules");
      if (v == nullptr) return false;
      std::string token;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (!token.empty()) opts.rules.enabled.insert(token);
          token.clear();
          if (*p == '\0') break;
        } else {
          token.push_back(*p);
        }
      }
    } else if (arg == "--update-baseline") {
      opts.update_baseline = true;
    } else if (arg == "--show-baselined") {
      opts.show_baselined = true;
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      exit_code = usage_error("unknown option " + arg);
      return false;
    } else {
      opts.paths.push_back(arg);
    }
  }
  if (opts.update_baseline && opts.baseline_path.empty()) {
    exit_code = usage_error("--update-baseline requires --baseline");
    return false;
  }
  return true;
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".h" || ext == ".hpp" || ext == ".cc";
}

/// Expands targets to a sorted, de-duplicated list of lintable files.
std::vector<fs::path> collect_files(const Options& opts, int& exit_code) {
  std::vector<std::string> targets = opts.paths;
  if (targets.empty()) targets.push_back((fs::path(opts.root) / "src").string());
  std::set<fs::path> files;
  for (const std::string& target : targets) {
    std::error_code ec;
    const fs::path path(target);
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && lintable(it->path())) {
          files.insert(fs::weakly_canonical(it->path()));
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.insert(fs::weakly_canonical(path));
    } else {
      std::cerr << "netqos-analyze: error: no such file or directory: "
                << target << "\n";
      exit_code = 2;
      return {};
    }
  }
  return {files.begin(), files.end()};
}

std::string relative_to_root(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel =
      fs::relative(file, fs::weakly_canonical(root, ec), ec);
  std::string out = (ec || rel.empty()) ? file.string() : rel.generic_string();
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  int exit_code = 0;
  if (!parse_args(argc, argv, opts, exit_code)) return exit_code;

  if (opts.list_rules) {
    for (const auto& [rule, description] : rule_catalog()) {
      std::printf("%s  %s\n", rule.c_str(), description.c_str());
    }
    return 0;
  }

  const std::vector<fs::path> files = collect_files(opts, exit_code);
  if (exit_code != 0) return exit_code;

  // Pass 1: load + parse everything — R7 resolves case labels against
  // enums defined in other files (proto.h's MessageType in server.cpp).
  std::vector<SourceFile> sources;
  std::vector<Syntax> syntaxes;
  sources.reserve(files.size());
  syntaxes.reserve(files.size());
  EnumRegistry registry;
  for (const fs::path& file : files) {
    sources.push_back(
        load_source(file.string(), relative_to_root(file, opts.root)));
    syntaxes.push_back(parse_syntax(sources.back()));
    for (const EnumDef& def : syntaxes.back().enums) registry.add(def);
  }
  registry.finalize();

  // Rule-set hash: cache entries die when the enabled set or catalog
  // text changes.
  std::uint64_t rules_hash = fnv1a("netqos-analyze rules v1");
  for (const auto& [rule, description] : rule_catalog()) {
    if (!opts.rules.rule_on(rule)) continue;
    rules_hash = fnv1a(rule, rules_hash);
    rules_hash = fnv1a(description, rules_hash);
  }

  ResultCache cache;
  if (!opts.cache_path.empty()) cache = ResultCache::load(opts.cache_path);

  // Pass 2: run rules per file, via the cache when warm.
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    std::vector<Finding> file_findings;
    const bool cached =
        !opts.cache_path.empty() &&
        cache.lookup(sources[i].path, sources[i].content_hash,
                     registry.content_hash, rules_hash, file_findings);
    if (!cached) {
      file_findings =
          run_rules(sources[i], syntaxes[i], registry, opts.rules);
      if (!opts.cache_path.empty()) {
        cache.store(sources[i].path, sources[i].content_hash,
                    registry.content_hash, rules_hash, file_findings);
      }
    }
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  if (!opts.cache_path.empty()) {
    cache.save(opts.cache_path);
    std::cerr << "netqos-analyze: cache " << cache.hits() << " hit(s), "
              << cache.misses() << " miss(es)\n";
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });

  if (!opts.sarif_path.empty()) {
    std::ofstream out(opts.sarif_path);
    out << to_sarif(findings);
  }

  if (opts.update_baseline) {
    Baseline::save(opts.baseline_path, findings);
    std::printf("netqos-analyze: wrote %zu finding(s) to %s\n",
                findings.size(), opts.baseline_path.c_str());
    return 0;
  }

  Baseline baseline;
  if (!opts.baseline_path.empty()) {
    baseline = Baseline::load(opts.baseline_path);
  }
  std::size_t baselined = 0;
  std::size_t fresh = 0;
  for (const Finding& f : findings) {
    if (baseline.contains(f)) {
      ++baselined;
      if (opts.show_baselined) {
        std::printf("%s [baselined]\n", f.render().c_str());
      }
    } else {
      ++fresh;
      std::printf("%s\n", f.render().c_str());
    }
  }
  if (fresh > 0) {
    std::cerr << "netqos-analyze: " << fresh << " new finding(s)";
    if (baselined > 0) std::cerr << " (+" << baselined << " baselined)";
    std::cerr << "\n";
    return 1;
  }
  std::cerr << "netqos-analyze: clean (" << baselined
            << " baselined finding(s) remain)\n";
  return 0;
}
