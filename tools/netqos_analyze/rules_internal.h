// Shared state between the ported legacy rules (R1-R5) and the
// flow-sensitive rules (R6-R8): allow-comment suppression, finding
// dedup, and the per-file inputs every rule walks.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze.h"

namespace netqos::analyze {

struct RuleContext {
  const SourceFile& file;
  const Syntax& syntax;
  const EnumRegistry& registry;
  std::vector<Finding> findings;
  // line -> rules allowed by `// netqos-lint: allow(Rn): reason` on the
  // line or the line above.
  std::map<int, std::set<std::string>> allows;

  RuleContext(const SourceFile& f, const Syntax& s, const EnumRegistry& r);

  void report(const std::string& rule, int line, const std::string& message);
  bool in_file(std::initializer_list<const char*> suffixes) const {
    return file.path_ends_with(suffixes);
  }
};

// rules_legacy.cpp — ports of netqos_lint.py R1-R5.
void check_r1(RuleContext& ctx);
void check_r2(RuleContext& ctx);
void check_r3(RuleContext& ctx);
void check_r4(RuleContext& ctx);
void check_r5(RuleContext& ctx);

// rules_flow.cpp — flow-sensitive rules.
void check_r6(RuleContext& ctx);
void check_r7(RuleContext& ctx);
void check_r8(RuleContext& ctx);

}  // namespace netqos::analyze
