// Report layer: baseline files keyed by finding content hash, the
// per-file result cache behind warm incremental runs, and SARIF 2.1.0
// output for CI code scanning.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analyze.h"

namespace netqos::analyze {

namespace {

/// Splits on single-character delimiter, keeping empty fields.
std::vector<std::string> split(const std::string& line, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = line.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string escape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape_field(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 >= text.size()) {
      out.push_back(text[i]);
      continue;
    }
    ++i;
    switch (text[i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default: out.push_back(text[i]);
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Baseline

Baseline Baseline::load(const std::string& path) {
  Baseline baseline;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Entry: "RULE hash-hex [path normalized-source...]" — only the
    // first two fields key the finding; the rest is for humans.
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos) continue;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    const std::string key =
        sp2 == std::string::npos ? line : line.substr(0, sp2);
    baseline.keys.insert(key);
  }
  return baseline;
}

void Baseline::save(const std::string& path,
                    const std::vector<Finding>& findings) {
  std::vector<std::string> entries;
  entries.reserve(findings.size());
  for (const Finding& f : findings) {
    entries.push_back(f.rule + " " + f.hash_hex() + " " + f.path + " " +
                      normalize(f.source));
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  std::ofstream out(path);
  out << "# netqos-analyze baseline\n"
      << "# One finding per line: RULE content-hash path normalized-source.\n"
      << "# Keys are content hashes, so entries survive unrelated line "
         "shifts.\n"
      << "# Regenerate with: netqos_analyze --baseline THIS "
         "--update-baseline\n";
  for (const std::string& entry : entries) out << entry << "\n";
}

bool Baseline::contains(const Finding& finding) const {
  return keys.count(finding.rule + " " + finding.hash_hex()) > 0;
}

// ---------------------------------------------------------------------------
// ResultCache
//
// Text format, one record per file:
//   file <tab> rel_path <tab> file_hash <tab> registry_hash <tab> rules_hash
//   find <tab> rule <tab> line <tab> message <tab> source   (0..n times)

ResultCache ResultCache::load(const std::string& path) {
  ResultCache cache;
  std::ifstream in(path);
  std::string line;
  std::string current;
  while (std::getline(in, line)) {
    const std::vector<std::string> fields = split(line, '\t');
    if (fields[0] == "file" && fields.size() == 5) {
      current = unescape_field(fields[1]);
      Entry& entry = cache.entries_[current];
      entry.file_hash = std::strtoull(fields[2].c_str(), nullptr, 16);
      entry.registry_hash = std::strtoull(fields[3].c_str(), nullptr, 16);
      entry.rules_hash = std::strtoull(fields[4].c_str(), nullptr, 16);
    } else if (fields[0] == "find" && fields.size() == 5 && !current.empty()) {
      Finding f;
      f.rule = fields[1];
      f.path = current;
      f.line = std::atoi(fields[2].c_str());
      f.message = unescape_field(fields[3]);
      f.source = unescape_field(fields[4]);
      cache.entries_[current].findings.push_back(std::move(f));
    }
  }
  return cache;
}

bool ResultCache::lookup(const std::string& rel_path, std::uint64_t file_hash,
                         std::uint64_t registry_hash, std::uint64_t rules_hash,
                         std::vector<Finding>& out) const {
  const auto it = entries_.find(rel_path);
  if (it == entries_.end() || it->second.file_hash != file_hash ||
      it->second.registry_hash != registry_hash ||
      it->second.rules_hash != rules_hash) {
    ++misses_;
    return false;
  }
  out = it->second.findings;
  ++hits_;
  return true;
}

void ResultCache::store(const std::string& rel_path, std::uint64_t file_hash,
                        std::uint64_t registry_hash, std::uint64_t rules_hash,
                        const std::vector<Finding>& findings) {
  Entry& entry = entries_[rel_path];
  entry.file_hash = file_hash;
  entry.registry_hash = registry_hash;
  entry.rules_hash = rules_hash;
  entry.findings = findings;
}

void ResultCache::save(const std::string& path) const {
  std::ofstream out(path);
  char hex[17];
  for (const auto& [rel_path, entry] : entries_) {
    out << "file\t" << escape_field(rel_path);
    for (const std::uint64_t h :
         {entry.file_hash, entry.registry_hash, entry.rules_hash}) {
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(h));
      out << "\t" << hex;
    }
    out << "\n";
    for (const Finding& f : entry.findings) {
      out << "find\t" << f.rule << "\t" << f.line << "\t"
          << escape_field(f.message) << "\t" << escape_field(f.source)
          << "\n";
    }
  }
}

// ---------------------------------------------------------------------------
// SARIF

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"netqos-analyze\",\n"
      << "          \"version\": \"1.0.0\",\n"
      << "          \"informationUri\": "
         "\"tools/netqos_analyze/README-pointer: see repo DESIGN.md\",\n"
      << "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out << "            {\"id\": \"" << json_escape(catalog[i].first)
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(catalog[i].second) << "\"}}"
        << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << json_escape(f.path) << "\"}, \"region\": {\"startLine\": "
        << f.line << "}}}\n"
        << "          ],\n"
        << "          \"partialFingerprints\": {\"netqosFindingHash/v1\": \""
        << f.hash_hex() << "\"}\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace netqos::analyze
