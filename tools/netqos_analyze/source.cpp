// Source layer: file loading, comment/string masking, line mapping, and
// the FNV-1a content hashing behind baseline keys and the result cache.
//
// mask_code is a faithful port of netqos_lint.py's masker — the parity
// gate in scripts/lint.sh depends on the two producing the same masked
// text (same offsets, newlines preserved).
#include "analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace netqos::analyze {

namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::uint64_t fnv1a(std::string_view data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string normalize(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  bool in_space = true;  // leading whitespace dropped
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::uint64_t Finding::hash() const {
  std::uint64_t h = fnv1a(rule);
  h = fnv1a("|", h);
  h = fnv1a(path, h);
  h = fnv1a("|", h);
  h = fnv1a(normalize(source), h);
  return h;
}

std::string Finding::hash_hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash()));
  return buf;
}

std::string Finding::render() const {
  std::ostringstream out;
  out << path << ":" << line << ": [" << rule << "] " << message;
  return out.str();
}

std::string mask_code(std::string_view text) {
  std::string out(text);
  const std::size_t n = text.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = text[i];
    const char nxt = i + 1 < n ? text[i + 1] : '\0';
    if (c == '/' && nxt == '/') {
      while (i < n && text[i] != '\n') out[i++] = ' ';
    } else if (c == '/' && nxt == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) {
        if (text[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      }
    } else if (c == '"' || c == '\'') {
      // A ' preceded by an identifier/number char is a C++14 digit
      // separator (1'000'000), not a char literal.
      if (c == '\'' && i > 0 && is_word(text[i - 1])) {
        ++i;
        continue;
      }
      const char quote = c;
      // Raw string literal R"delim( ... )delim"
      if (quote == '"' && i > 0 && text[i - 1] == 'R' &&
          (i < 2 || !is_word(text[i - 2]))) {
        std::size_t d = i + 1;
        while (d < n && text[d] != '(' && text[d] != ' ' && text[d] != ')' &&
               text[d] != '\\' && text[d] != '\n') {
          ++d;
        }
        if (d < n && text[d] == '(') {
          const std::string delim(text.substr(i + 1, d - i - 1));
          const std::string closer = ")" + delim + "\"";
          const std::size_t found = text.find(closer, i);
          const std::size_t end =
              found == std::string_view::npos ? n : found + closer.size();
          for (std::size_t j = i; j < std::min(end, n); ++j) {
            if (text[j] != '\n') out[j] = ' ';
          }
          i = end;
          continue;
        }
      }
      out[i] = ' ';
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') {
          out[i] = ' ';
          ++i;
          if (i < n && text[i] != '\n') out[i] = ' ';
          ++i;
          continue;
        }
        if (text[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i < n) {
        out[i] = ' ';
        ++i;
      }
    } else {
      ++i;
    }
  }
  return out;
}

int SourceFile::line_of(std::size_t offset) const {
  const auto it = std::upper_bound(newline_offsets.begin(),
                                   newline_offsets.end(), offset);
  return static_cast<int>(it - newline_offsets.begin()) + 1;
}

const std::string& SourceFile::raw_line(int line) const {
  static const std::string kEmpty;
  if (line < 1 || line > static_cast<int>(lines.size())) return kEmpty;
  return lines[static_cast<std::size_t>(line - 1)];
}

bool SourceFile::path_ends_with(
    std::initializer_list<const char*> suffixes) const {
  for (const char* suffix : suffixes) {
    const std::string_view s(suffix);
    if (path.size() >= s.size() &&
        std::string_view(path).substr(path.size() - s.size()) == s) {
      return true;
    }
  }
  return false;
}

namespace {

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

SourceFile load_source(const std::string& abs_path, const std::string& rel_path) {
  SourceFile file;
  file.path = rel_path;
  std::replace(file.path.begin(), file.path.end(), '\\', '/');
  std::ifstream in(abs_path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  file.text = buffer.str();
  file.masked = mask_code(file.text);
  file.lines = split_lines(file.text);
  file.masked_lines = split_lines(file.masked);
  for (std::size_t i = 0; i < file.text.size(); ++i) {
    if (file.text[i] == '\n') file.newline_offsets.push_back(i);
  }
  file.content_hash = fnv1a(file.text);
  return file;
}

}  // namespace netqos::analyze
