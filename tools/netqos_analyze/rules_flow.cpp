// Flow-sensitive rules R6-R8 — the reason this engine exists. Each rule
// walks the per-function statement stream in execution order, which the
// line-regex linter cannot do:
//
//   R6  tracks wire-derived integers (ByteReader reads, view accessors,
//       std::get_if on wire variants) through assignments until either a
//       bounding comparison sanitizes them or they reach indexing /
//       resize / reserve / assign / span construction unchecked.
//   R7  resolves switch case labels against the cross-file wire-enum
//       registry and demands exhaustiveness or an error default; BER tag
//       switches (kTag* labels) always need the error default.
//   R8  demands exception isolation around measurement-module hook
//       deliveries and an allocation-free zero-copy ber_view path.
#include <algorithm>
#include <cctype>
#include <string>

#include "analyze.h"
#include "rules_internal.h"

namespace netqos::analyze {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Token index range [first, last) covering masked offsets [begin, end).
std::pair<std::size_t, std::size_t> token_range(const std::vector<Token>& tokens,
                                                std::size_t begin,
                                                std::size_t end) {
  const auto lo = std::lower_bound(
      tokens.begin(), tokens.end(), begin,
      [](const Token& t, std::size_t pos) { return t.pos < pos; });
  const auto hi = std::lower_bound(
      tokens.begin(), tokens.end(), end,
      [](const Token& t, std::size_t pos) { return t.pos < pos; });
  return {static_cast<std::size_t>(lo - tokens.begin()),
          static_cast<std::size_t>(hi - tokens.begin())};
}

/// Index of the token matching the bracket at `open` ("(" ")", "[" "]",
/// "{" "}"), or `last` if unbalanced.
std::size_t match_token(const std::vector<Token>& tokens, std::size_t open,
                        std::size_t last, std::string_view open_text,
                        std::string_view close_text) {
  int depth = 0;
  for (std::size_t i = open; i < last; ++i) {
    if (tokens[i].text == open_text) {
      ++depth;
    } else if (tokens[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return last;
}

}  // namespace

// ===========================================================================
// R6: taint/bounds on wire-derived integers

namespace {

constexpr const char* kIntegerReads[] = {
    "get_u8", "get_u16", "get_u32", "get_u64",
    "peek_u8", "peek_u16", "peek_u32", "peek_u64",
    "to_unsigned", "to_integer"};
constexpr const char* kWireVariantTypes[] = {
    "int64_t", "uint64_t", "int32_t", "uint32_t",
    "Counter32", "Counter64", "Gauge32", "TimeTicks"};

bool in_list(std::string_view name, const char* const* names, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (name == names[i]) return true;
  }
  return false;
}

struct TaintState {
  std::set<std::string> tainted;   // value identifiers
  std::set<std::string> wire_ptr;  // std::get_if results on wire variants

  bool dirty(std::string_view ident) const {
    const std::string key(ident);
    return tainted.count(key) > 0 || wire_ptr.count(key) > 0;
  }
  void sanitize(std::string_view ident) {
    const std::string key(ident);
    tainted.erase(key);
    wire_ptr.erase(key);
  }
};

/// Does [first,last) contain a taint source: a ByteReader integer read /
/// view accessor (`.get_u16(`, `.to_unsigned(`) returning wire data?
bool contains_source(const std::vector<Token>& tokens, std::size_t first,
                     std::size_t last) {
  for (std::size_t i = first; i + 2 < last; ++i) {
    if ((tokens[i].text == "." || tokens[i].text == "->") &&
        tokens[i + 1].kind == Token::Kind::kIdent &&
        in_list(tokens[i + 1].text, kIntegerReads, std::size(kIntegerReads)) &&
        tokens[i + 2].text == "(") {
      return true;
    }
  }
  return false;
}

/// std::get_if<wire-int-type>( anywhere in [first,last).
bool contains_get_if_wire(const std::vector<Token>& tokens, std::size_t first,
                          std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    if (tokens[i].kind != Token::Kind::kIdent || tokens[i].text != "get_if") {
      continue;
    }
    for (std::size_t j = i + 1; j < last && tokens[j].text != "("; ++j) {
      if (tokens[j].kind == Token::Kind::kIdent &&
          in_list(tokens[j].text, kWireVariantTypes,
                  std::size(kWireVariantTypes))) {
        return true;
      }
    }
  }
  return false;
}

bool contains_dirty(const std::vector<Token>& tokens, std::size_t first,
                    std::size_t last, const TaintState& state,
                    std::string* which) {
  for (std::size_t i = first; i < last; ++i) {
    if (tokens[i].kind == Token::Kind::kIdent && state.dirty(tokens[i].text)) {
      *which = std::string(tokens[i].text);
      return true;
    }
  }
  return false;
}

/// true when the span holds nothing but trivial comparands: literals
/// 0 / 1, nullptr / NULL, and punctuation. A comparison against such a
/// span (p == nullptr, *count < 0) is a validity check, not a bound.
bool only_trivial_comparands(const std::vector<Token>& tokens,
                             std::size_t first, std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    const Token& t = tokens[i];
    if (t.kind == Token::Kind::kNumber) {
      if (t.text != "0" && t.text != "1") return false;
    } else if (t.kind == Token::Kind::kIdent) {
      if (t.text != "nullptr" && t.text != "NULL") return false;
    }
  }
  return true;
}

/// Primary-expression span ending at `idx` (exclusive), walking left
/// over identifier chains, calls, and subscripts.
std::size_t primary_begin(const std::vector<Token>& tokens, std::size_t idx,
                          std::size_t first) {
  std::size_t i = idx;
  while (i > first) {
    const Token& t = tokens[i - 1];
    if (t.kind == Token::Kind::kIdent || t.kind == Token::Kind::kNumber ||
        t.text == "." || t.text == "->" || t.text == "::") {
      --i;
      continue;
    }
    if (t.text == ")" || t.text == "]") {
      // Walk back to the matching opener.
      const std::string_view close = t.text;
      const std::string_view open = close == ")" ? "(" : "[";
      int depth = 0;
      std::size_t j = i - 1;
      while (true) {
        if (tokens[j].text == close) ++depth;
        if (tokens[j].text == open && --depth == 0) break;
        if (j == first) break;
        --j;
      }
      if (depth != 0) return i;
      i = j;
      continue;
    }
    if (t.text == "*" || t.text == "!") {
      // Deref / negation prefix binds only if preceded by a non-operand.
      if (i - 1 == first) {
        --i;
        continue;
      }
      const Token& before = tokens[i - 2];
      if (before.kind == Token::Kind::kIdent ||
          before.kind == Token::Kind::kNumber || before.text == ")" ||
          before.text == "]") {
        break;  // binary multiply, not a prefix
      }
      --i;
      continue;
    }
    break;
  }
  return i;
}

/// Primary-expression span starting at `idx` (inclusive), walking right.
std::size_t primary_end(const std::vector<Token>& tokens, std::size_t idx,
                        std::size_t last) {
  std::size_t i = idx;
  // Optional prefix operators.
  while (i < last && (tokens[i].text == "*" || tokens[i].text == "!" ||
                      tokens[i].text == "-" || tokens[i].text == "&")) {
    ++i;
  }
  while (i < last) {
    const Token& t = tokens[i];
    if (t.kind == Token::Kind::kIdent || t.kind == Token::Kind::kNumber ||
        t.text == "." || t.text == "->" || t.text == "::") {
      ++i;
      continue;
    }
    if (t.text == "(" || t.text == "[") {
      const std::size_t close = match_token(
          tokens, i, last, t.text, t.text == "(" ? ")" : "]");
      if (close >= last) return last;
      i = close + 1;
      continue;
    }
    break;
  }
  return i;
}

}  // namespace

void check_r6(RuleContext& ctx) {
  // The byte-buffer layer IS the bounds check (ByteReader::require);
  // its internal length arithmetic is the sanctioned implementation.
  if (ctx.in_file({"common/byte_buffer.h", "common/byte_buffer.cpp"})) return;
  const std::vector<Token>& tokens = ctx.syntax.tokens;

  auto flag = [&](std::size_t token_idx, const std::string& ident,
                  const std::string& use) {
    ctx.report(
        "R6", ctx.file.line_of(tokens[token_idx].pos),
        "wire-derived value '" + ident + "' reaches " + use +
            " without an upper-bound check; compare it against remaining() "
            "or a sane limit (or clamp via std::min) before trusting it "
            "(PR 3 bug class, flow-sensitive)");
  };

  for (const Function& func : ctx.syntax.functions) {
    const auto [first, last] =
        token_range(tokens, func.body_start, func.body_end);
    TaintState state;
    for (std::size_t i = first; i < last; ++i) {
      const Token& tok = tokens[i];

      // --- assignments: X = rhs / X op= rhs -----------------------------
      if (tok.kind == Token::Kind::kPunct &&
          (tok.text == "=" || tok.text == "+=" || tok.text == "-=" ||
           tok.text == "*=" || tok.text == "/=")) {
        // LHS key: the identifier ending the chain left of the operator.
        std::string key;
        if (i > first) {
          std::size_t b = i - 1;
          if (tokens[b].text == "]") {
            int depth = 0;
            while (b > first) {
              if (tokens[b].text == "]") ++depth;
              if (tokens[b].text == "[" && --depth == 0) break;
              --b;
            }
            if (b > first) --b;
          }
          if (tokens[b].kind == Token::Kind::kIdent) {
            key = std::string(tokens[b].text);
          }
        }
        // RHS span: up to `;` or `,` at bracket depth 0.
        std::size_t end = i + 1;
        int depth = 0;
        while (end < last) {
          const std::string_view text = tokens[end].text;
          if (text == "(" || text == "[" || text == "{") ++depth;
          if (text == ")" || text == "]" || text == "}") --depth;
          if (depth < 0) break;
          if (depth == 0 && (text == ";" || text == ",")) break;
          ++end;
        }
        if (!key.empty()) {
          bool clamped = false;
          for (std::size_t j = i + 1; j < end; ++j) {
            if (tokens[j].kind == Token::Kind::kIdent &&
                (tokens[j].text == "min" || tokens[j].text == "clamp")) {
              clamped = true;
              break;
            }
          }
          std::string which;
          if (clamped) {
            state.sanitize(key);
          } else if (tok.text == "=" &&
                     contains_get_if_wire(tokens, i + 1, end)) {
            state.tainted.erase(key);
            state.wire_ptr.insert(key);
          } else if (contains_source(tokens, i + 1, end) ||
                     contains_dirty(tokens, i + 1, end, state, &which)) {
            state.wire_ptr.erase(key);
            state.tainted.insert(key);
          } else if (tok.text == "=") {
            state.sanitize(key);  // plain reassignment from clean data
          }
        }
        continue;
      }

      // --- comparisons sanitize when bounded by a non-trivial side ------
      if (tok.kind == Token::Kind::kPunct &&
          (tok.text == "<" || tok.text == ">" || tok.text == "<=" ||
           tok.text == ">=" || tok.text == "==" || tok.text == "!=")) {
        const std::size_t lb = primary_begin(tokens, i, first);
        const std::size_t re = primary_end(tokens, i + 1, last);
        std::string which;
        if (contains_dirty(tokens, lb, i, state, &which) &&
            !only_trivial_comparands(tokens, i + 1, re)) {
          state.sanitize(which);
        }
        if (contains_dirty(tokens, i + 1, re, state, &which) &&
            !only_trivial_comparands(tokens, lb, i)) {
          state.sanitize(which);
        }
        continue;
      }

      // --- sanctioned consumers sanitize their argument -----------------
      if ((tok.text == "." || tok.text == "->") && i + 2 < last &&
          tokens[i + 1].kind == Token::Kind::kIdent &&
          (tokens[i + 1].text == "get_bytes" ||
           tokens[i + 1].text == "get_string") &&
          tokens[i + 2].text == "(") {
        const std::size_t close = match_token(tokens, i + 2, last, "(", ")");
        for (std::size_t j = i + 3; j < close; ++j) {
          if (tokens[j].kind == Token::Kind::kIdent) {
            state.sanitize(tokens[j].text);
          }
        }
        i = i + 2;  // still scan args (nested reads taint nothing here)
        continue;
      }

      // --- dangerous use: subscript ------------------------------------
      if (tok.text == "[") {
        const std::size_t close = match_token(tokens, i, last, "[", "]");
        std::string which;
        if (contains_dirty(tokens, i + 1, close, state, &which)) {
          flag(i, which, "indexing");
        } else if (contains_source(tokens, i + 1, close)) {
          flag(i, "(unnamed read)", "indexing");
        }
        continue;
      }

      // --- dangerous use: resize/reserve/assign/span --------------------
      if (tok.kind == Token::Kind::kIdent && i + 1 < last) {
        const bool member = i > first && (tokens[i - 1].text == "." ||
                                          tokens[i - 1].text == "->");
        const std::string_view name = tok.text;
        std::size_t paren = i + 1;
        if (name == "span" && tokens[paren].text == "<") {
          const std::size_t close_angle =
              match_token(tokens, paren, last, "<", ">");
          if (close_angle >= last) continue;
          paren = close_angle + 1;
        }
        if (paren >= last || tokens[paren].text != "(") continue;
        const bool shaping =
            (member && (name == "resize" || name == "reserve" ||
                        name == "subspan" || name == "first" ||
                        name == "last")) ||
            name == "span";
        const bool assigning = member && name == "assign";
        if (!shaping && !assigning) continue;
        std::size_t close = match_token(tokens, paren, last, "(", ")");
        if (assigning) {
          // Only the count argument (first) is a size.
          int depth = 0;
          for (std::size_t j = paren; j < close; ++j) {
            if (tokens[j].text == "(") ++depth;
            if (tokens[j].text == ")") --depth;
            if (depth == 1 && tokens[j].text == ",") {
              close = j;
              break;
            }
          }
        }
        std::string use = "'";
        use += name;
        use += "'";
        std::string which;
        if (contains_dirty(tokens, paren + 1, close, state, &which)) {
          flag(i, which, use);
        } else if (contains_source(tokens, paren + 1, close)) {
          flag(i, "(unnamed read)", use);
        }
        continue;
      }
    }
  }
}

// ===========================================================================
// R7: wire-enum switch exhaustiveness

namespace {

/// An error-ish default: throws, returns, or touches an error path.
bool default_is_error(const std::vector<Token>& tokens, std::size_t first,
                      std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    if (tokens[i].text == "throw" || tokens[i].text == "return") return true;
    const std::string lower = to_lower(tokens[i].text);
    for (const char* needle :
         {"error", "fail", "bad", "invalid", "reject", "unknown", "malformed"}) {
      if (lower.find(needle) != std::string::npos) return true;
    }
  }
  return false;
}

}  // namespace

void check_r7(RuleContext& ctx) {
  const std::vector<Token>& tokens = ctx.syntax.tokens;
  for (const SwitchStmt& sw : ctx.syntax.switches) {
    const int line = ctx.file.line_of(sw.keyword_pos);
    std::pair<std::size_t, std::size_t> def_range{0, 0};
    if (sw.has_default) {
      def_range = token_range(tokens, sw.default_start, sw.default_end);
    }
    const bool error_default =
        sw.has_default &&
        default_is_error(tokens, def_range.first, def_range.second);

    // (a) switches over registered wire enums.
    if (!sw.case_qualifier.empty()) {
      const EnumDef* def =
          ctx.registry.resolve(sw.case_qualifier, sw.case_enumerators);
      if (def != nullptr && def->is_wire()) {
        std::vector<std::string> missing;
        for (const std::string& e : def->enumerators) {
          if (sw.case_enumerators.count(e) == 0) missing.push_back(e);
        }
        if (!missing.empty() && !error_default) {
          std::string list;
          for (const std::string& m : missing) {
            if (!list.empty()) list += ", ";
            list += m;
          }
          ctx.report(
              "R7", line,
              "switch over wire enum '" + def->qualified + "' misses " +
                  list + " and has no error-returning default; a peer can "
                  "put any byte here — cover every enumerator or reject "
                  "unknown values explicitly");
        }
      }
    }

    // (b) switches over raw BER tag constants can never be exhaustive:
    // they always need the error default.
    if (sw.has_ber_tag_cases && !error_default) {
      ctx.report(
          "R7", line,
          "switch over BER tag values without an error-returning default; "
          "a truncated or hostile TLV stream can carry any tag byte — "
          "reject unknown tags explicitly");
    }
  }
}

// ===========================================================================
// R8: hot-path exception isolation

namespace {

constexpr const char* kModuleHooks[] = {
    "init", "produce", "flush", "on_interface_sample", "on_path_sample",
    "on_round_end"};

/// A receiver naming a single Module ("module", "entry.module",
/// "probe_module_") — not the plural ModuleHost members ("modules_"),
/// whose fan-out methods guard internally.
bool names_single_module(std::string_view receiver) {
  const std::string lower = to_lower(receiver);
  std::string_view stem = lower;
  if (!stem.empty() && stem.back() == '_') stem.remove_suffix(1);
  if (stem == "module" || stem == "mod") return true;
  const std::string_view suffix = "_module";
  return stem.size() > suffix.size() &&
         stem.substr(stem.size() - suffix.size()) == suffix;
}

bool catches_isolate(const std::vector<std::string>& types) {
  for (const std::string& t : types) {
    if (t == "..." || t == "exception") return true;
  }
  return false;
}

}  // namespace

void check_r8(RuleContext& ctx) {
  const std::vector<Token>& tokens = ctx.syntax.tokens;

  // (a) module hook deliveries must be exception-isolated: inside the
  // argument list of a guarded(...) call, or under try + catch-all.
  if (!ctx.in_file({"monitor/module.h", "monitor/module.cpp"})) {
    std::vector<std::pair<std::size_t, std::size_t>> guard_spans;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].kind == Token::Kind::kIdent &&
          to_lower(tokens[i].text).find("guard") != std::string::npos &&
          tokens[i + 1].text == "(") {
        guard_spans.emplace_back(tokens[i + 1].pos,
                                 match_paren(ctx.file.masked, tokens[i + 1].pos));
      }
    }
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind != Token::Kind::kIdent) continue;
      if (!names_single_module(tokens[i].text)) continue;
      if (tokens[i + 1].text != "." && tokens[i + 1].text != "->") continue;
      if (tokens[i + 2].kind != Token::Kind::kIdent ||
          !in_list(tokens[i + 2].text, kModuleHooks, std::size(kModuleHooks))) {
        continue;
      }
      if (i + 3 >= tokens.size() || tokens[i + 3].text != "(") continue;
      const std::size_t pos = tokens[i].pos;
      bool isolated = false;
      for (const auto& [begin, end] : guard_spans) {
        if (begin <= pos && pos < end) {
          isolated = true;
          break;
        }
      }
      if (!isolated) {
        for (const TryBlock& block : ctx.syntax.try_blocks) {
          if (block.body_start <= pos && pos < block.body_end &&
              catches_isolate(block.catch_types)) {
            isolated = true;
            break;
          }
        }
      }
      if (!isolated) {
        ctx.report(
            "R8", ctx.file.line_of(pos),
            "module hook '" + std::string(tokens[i + 2].text) +
                "' delivered without exception isolation; a throwing module "
                "would kill the poll loop — route the call through "
                "ModuleHost::guarded or wrap it in try/catch(...)");
      }
    }
  }

  // (b) the zero-copy ber_view path stays allocation-free off throw
  // statements; to_oid/to_value/decode_varbinds are the sanctioned
  // materializing bridges.
  const bool view_file = ctx.file.path.find("ber_view") != std::string::npos;
  for (const Function& func : ctx.syntax.functions) {
    const bool view_method =
        func.qualified.find("BerReader::") != std::string::npos ||
        func.qualified.find("OidView::") != std::string::npos ||
        func.qualified.find("ValueView::") != std::string::npos ||
        func.qualified.find("VarBindView::") != std::string::npos ||
        func.qualified.find("MessageHeadView::") != std::string::npos;
    if (!view_file && !view_method) continue;
    if (func.name == "to_oid" || func.name == "to_value" ||
        func.name == "decode_varbinds") {
      continue;
    }
    const auto [first, last] =
        token_range(tokens, func.body_start, func.body_end);
    for (std::size_t i = first; i < last; ++i) {
      if (tokens[i].kind != Token::Kind::kIdent) continue;
      if (tokens[i].text == "throw") {
        // Allocation while already failing is fine (error messages).
        while (i < last && tokens[i].text != ";") ++i;
        continue;
      }
      const std::string_view name = tokens[i].text;
      const bool alloc_call =
          i + 1 < last && tokens[i + 1].text == "(" &&
          (name == "push_back" || name == "emplace_back" || name == "resize" ||
           name == "reserve" || name == "insert" || name == "append" ||
           name == "to_string" || name == "make_unique" ||
           name == "make_shared");
      const bool alloc_type =
          name == "new" || name == "vector" || name == "string";
      if (alloc_call || alloc_type) {
        ctx.report(
            "R8", ctx.file.line_of(tokens[i].pos),
            "allocation ('" + std::string(name) +
                "') on the zero-copy ber_view path; the hot path must not "
                "carry allocation-throwing patterns — materialize via "
                "to_oid/to_value/decode_varbinds instead");
      }
    }
  }
}

// ===========================================================================
// Dispatcher + catalog

const std::vector<std::pair<std::string, std::string>>& rule_catalog() {
  static const std::vector<std::pair<std::string, std::string>> kCatalog = {
      {"R1",
       "decode-safety: ber/byte-buffer reads need BerError + BufferUnderflow "
       "handlers"},
      {"R2",
       "OID monotonicity: GETNEXT/GETBULK walk loops must reject "
       "non-increasing OIDs"},
      {"R3",
       "units discipline: bit/byte/Mbps conversions only via common/units.h; "
       "counter differencing only in monitor/counter_math"},
      {"R4",
       "sim-time purity: no wall clocks or ambient randomness outside "
       "common/sim_time / common/rng"},
      {"R5",
       "module purity: measurement modules may not reach the SNMP layer or "
       "mutate the StatsDb"},
      {"R6",
       "taint/bounds: wire-derived lengths/counts must pass an upper-bound "
       "check before indexing, resize/reserve/assign, or span construction"},
      {"R7",
       "wire exhaustiveness: switches over wire enums cover every enumerator "
       "or carry an error-returning default; BER tag switches always do"},
      {"R8",
       "hot-path isolation: module hook deliveries are exception-guarded; "
       "the zero-copy ber_view path stays allocation-free"},
  };
  return kCatalog;
}

std::vector<Finding> run_rules(const SourceFile& file, const Syntax& syntax,
                               const EnumRegistry& registry,
                               const RuleOptions& options) {
  RuleContext ctx(file, syntax, registry);
  if (options.rule_on("R1")) check_r1(ctx);
  if (options.rule_on("R2")) check_r2(ctx);
  if (options.rule_on("R3")) check_r3(ctx);
  if (options.rule_on("R4")) check_r4(ctx);
  if (options.rule_on("R5")) check_r5(ctx);
  if (options.rule_on("R6")) check_r6(ctx);
  if (options.rule_on("R7")) check_r7(ctx);
  if (options.rule_on("R8")) check_r8(ctx);
  return std::move(ctx.findings);
}

}  // namespace netqos::analyze
