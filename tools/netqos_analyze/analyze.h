// netqos-analyze: flow-sensitive static analysis for the netqos tree.
//
// A C++ re-implementation of tools/netqos_lint/netqos_lint.py (rules
// R1-R5, verdict-compatible on the fixture corpus — scripts/lint.sh
// enforces parity) plus flow-sensitive rules the line-regex linter
// cannot express:
//
//   R6  taint/bounds       wire-derived lengths/counts/offsets must pass
//                          an upper-bound check (or a BufferUnderflow-
//                          guarded read) before indexing, span
//                          construction, resize/reserve/assign.
//   R7  wire exhaustiveness switches over wire enums (enum class : u8)
//                          cover every enumerator or carry an
//                          error-returning default; BER tag switches
//                          always carry an error default.
//   R8  hot-path isolation  measurement-module hook deliveries are
//                          exception-guarded; the zero-copy ber_view
//                          path stays allocation-free off throw paths.
//
// The engine is three layers:
//   1. source: load + mask (comments/strings blanked, offsets kept).
//   2. syntax: tokenizer, function/try/class/enum/switch discovery —
//      the per-function statement graph rules walk.
//   3. rules + report: findings keyed by a content hash (rule + path +
//      normalized source line), baseline/suppression, SARIF, and a
//      per-file result cache for incremental runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace netqos::analyze {

// ---------------------------------------------------------------------------
// Findings

struct Finding {
  std::string rule;     // "R1".."R8"
  std::string path;     // repo-relative, forward slashes
  int line = 0;         // 1-based
  std::string message;
  std::string source;   // raw source line (content-hash input)

  /// Stable content key: the finding survives unrelated line shifts.
  std::uint64_t hash() const;
  std::string hash_hex() const;
  std::string render() const;  // "path:line: [RULE] message"
};

/// FNV-1a 64-bit over `data`.
std::uint64_t fnv1a(std::string_view data, std::uint64_t seed = 0xcbf29ce484222325ull);

/// Collapses runs of whitespace to single spaces and trims.
std::string normalize(std::string_view line);

// ---------------------------------------------------------------------------
// Source layer

struct SourceFile {
  std::string path;     // repo-relative, forward slashes
  std::string text;     // raw bytes
  std::string masked;   // comments/strings/chars blanked, offsets preserved
  std::vector<std::string> lines;         // raw, split on '\n'
  std::vector<std::string> masked_lines;  // masked, split on '\n'
  std::vector<std::size_t> newline_offsets;
  std::uint64_t content_hash = 0;

  int line_of(std::size_t offset) const;  // 1-based
  const std::string& raw_line(int line) const;
  bool path_ends_with(std::initializer_list<const char*> suffixes) const;
};

/// Blanks //, /* */ comments and string/char literals (raw strings and
/// C++14 digit separators handled), preserving offsets and newlines.
std::string mask_code(std::string_view text);

SourceFile load_source(const std::string& abs_path, const std::string& rel_path);

// ---------------------------------------------------------------------------
// Syntax layer

struct Token {
  enum class Kind { kIdent, kNumber, kPunct };
  Kind kind = Kind::kPunct;
  std::string_view text;  // view into SourceFile::masked
  std::size_t pos = 0;    // char offset in masked text
};

std::vector<Token> tokenize(std::string_view masked);

/// Index just past the `}` matching the `{` at open_idx (masked text).
std::size_t match_brace(std::string_view text, std::size_t open_idx);
std::size_t match_paren(std::string_view text, std::size_t open_idx);

struct Function {
  std::string name;        // last :: component
  std::string qualified;   // full A::B::name chain as written
  std::size_t body_start = 0;  // offset of `{`
  std::size_t body_end = 0;    // offset just past `}`
};

struct TryBlock {
  std::size_t body_start = 0;
  std::size_t body_end = 0;
  std::vector<std::string> catch_types;  // "..." or last type identifier
};

struct EnumDef {
  std::string name;        // last component, e.g. "Kind"
  std::string qualified;   // "Event::Kind" when nested in a class
  std::string underlying;  // declared underlying type text ("" if none)
  std::vector<std::string> enumerators;
  bool is_wire() const;    // underlying type is a std::uint8_t flavor
};

struct SwitchStmt {
  std::size_t keyword_pos = 0;
  std::size_t cond_start = 0, cond_end = 0;  // inside the parens
  std::size_t body_start = 0, body_end = 0;  // `{` .. past `}`
  /// Distinct enumerator identifiers used in case labels (last component)
  std::set<std::string> case_enumerators;
  /// Qualifier chain of the first qualified case label ("Event::Kind").
  std::string case_qualifier;
  bool has_default = false;
  std::size_t default_start = 0, default_end = 0;  // default body span
  bool has_ber_tag_cases = false;  // any case label identifier kTag*
  int case_label_count = 0;        // total labels incl. integer ones
};

struct Syntax {
  std::vector<Token> tokens;
  std::vector<Function> functions;
  std::vector<TryBlock> try_blocks;
  std::vector<SwitchStmt> switches;
  std::vector<EnumDef> enums;  // defined in this file

  const Function* innermost_function(std::size_t offset) const;
};

Syntax parse_syntax(const SourceFile& file);

/// Cross-file registry of enum definitions (R7 needs proto.h's enums
/// while checking server.cpp). Keyed by last name component.
struct EnumRegistry {
  std::multimap<std::string, EnumDef> by_name;
  std::uint64_t content_hash = 0;  // stable over definition contents

  void add(const EnumDef& def);
  /// Entry whose qualified name ends with `qualifier` and whose
  /// enumerator set contains every name in `used`.
  const EnumDef* resolve(const std::string& qualifier,
                         const std::set<std::string>& used) const;
  void finalize();  // computes content_hash
};

// ---------------------------------------------------------------------------
// Rules

struct RuleOptions {
  std::set<std::string> enabled;  // empty = all
  bool rule_on(const std::string& rule) const {
    return enabled.empty() || enabled.count(rule) > 0;
  }
};

/// Runs every enabled rule over one file. `registry` spans all files of
/// the invocation.
std::vector<Finding> run_rules(const SourceFile& file, const Syntax& syntax,
                               const EnumRegistry& registry,
                               const RuleOptions& options);

/// Rule id -> one-line description, for --list-rules and SARIF metadata.
const std::vector<std::pair<std::string, std::string>>& rule_catalog();

// ---------------------------------------------------------------------------
// Report layer

struct Baseline {
  /// Keys: "RULE hash-hex". Absent file -> empty baseline.
  std::set<std::string> keys;
  static Baseline load(const std::string& path);
  static void save(const std::string& path, const std::vector<Finding>& findings);
  bool contains(const Finding& finding) const;
};

/// Per-file finding cache: (file hash, registry hash) -> findings, so a
/// warm incremental run re-analyzes only changed files.
class ResultCache {
 public:
  static ResultCache load(const std::string& path);
  bool lookup(const std::string& rel_path, std::uint64_t file_hash,
              std::uint64_t registry_hash, std::uint64_t rules_hash,
              std::vector<Finding>& out) const;
  void store(const std::string& rel_path, std::uint64_t file_hash,
             std::uint64_t registry_hash, std::uint64_t rules_hash,
             const std::vector<Finding>& findings);
  void save(const std::string& path) const;
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t file_hash = 0;
    std::uint64_t registry_hash = 0;
    std::uint64_t rules_hash = 0;
    std::vector<Finding> findings;
  };
  std::map<std::string, Entry> entries_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

/// Serializes findings as SARIF 2.1.0 for CI code-scanning upload.
std::string to_sarif(const std::vector<Finding>& findings);

std::string json_escape(std::string_view text);

}  // namespace netqos::analyze
