// Fixture: R6 taint/bounds violations. Wire-derived counts flow into
// container sizing and indexing without ever meeting an upper-bound
// check. The functions follow the R1 propagator convention (decode_*),
// so only the flow-sensitive rule can catch this.
#include <cstdint>
#include <vector>

namespace fixture {

struct Reader {
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::size_t remaining() const;
};

struct Body {
  std::vector<int> rows;
};

void decode_rows(Reader& in, Body& body) {
  const std::uint16_t count = in.get_u16();
  body.rows.reserve(count);  // BAD: unchecked wire count sizes the heap
  for (std::uint16_t i = 0; i < count; ++i) {
    body.rows.push_back(0);
  }
}

void decode_lookup(Reader& in, std::vector<int>& table) {
  const std::uint32_t index = in.get_u32();
  table[index] = 1;  // BAD: unchecked wire index
}

}  // namespace fixture
