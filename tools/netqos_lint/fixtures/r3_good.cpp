// Known-good fixture for R3 (units discipline).
//
// The same conversions routed through common/units.h and
// monitor/counter_math, plus legal non-unit uses of the literal 8
// (shifts, loop bounds). Expected findings: none.
#include "common/units.h"
#include "monitor/counter_math.h"

namespace netqos {

double link_speed_mbps(BitsPerSecond if_speed_bps) {
  return static_cast<double>(if_speed_bps) / static_cast<double>(kMbps);
}

BitsPerSecond octets_rate_to_bits(BytesPerSecond rate) {
  return to_bits_per_second(rate);
}

BytesPerSecond bandwidth_bytes_per_second(BitsPerSecond bps) {
  return to_bytes_per_second(bps);
}

std::uint32_t traffic_delta(std::uint32_t older, std::uint32_t newer) {
  return mon::counter32_delta(older, newer);  // wrap-correct
}

std::uint8_t top_byte(std::uint64_t value) {
  return static_cast<std::uint8_t>(value >> (7 * 8));  // shift, not units
}

}  // namespace netqos
