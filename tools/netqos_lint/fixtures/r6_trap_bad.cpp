// Fixture: the PR 3 trap-listener crash, reduced to its flow-sensitive
// essence. The listener trusted the varbind count parsed from the trap
// PDU and sized its scratch table from it; a truncated packet carried a
// garbage count and the decode path ran the heap (and an index) off the
// rails. The R1 fixture (regression_pr3_underflow.cpp) captures the
// missing-handler half of the bug; this one captures the missing
// bounds-check half, which only the taint-tracking rule sees — the
// enclosing function is a decode_* propagator, so R1 stays silent.
#include <cstdint>
#include <vector>

namespace fixture {

struct BerReader {
  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::size_t remaining() const;
};

struct TrapScratch {
  std::vector<std::uint32_t> if_index;
};

class TrapListener {
 public:
  void decode_trap(BerReader& reader);

 private:
  TrapScratch scratch_;
};

void TrapListener::decode_trap(BerReader& reader) {
  const std::uint32_t varbind_count = reader.get_u32();
  scratch_.if_index.resize(varbind_count);  // BAD: wire count sizes the table
  const std::uint32_t slot = reader.get_u32();
  scratch_.if_index[slot] = reader.get_u8();  // BAD: wire value indexes it
}

}  // namespace fixture
