// Known-bad fixture for R4 (simulated-time purity), query-service
// flavor: the tempting mistakes when writing a server — stamping
// responses with the host's wall clock, timing requests with
// steady_clock, jittering replies with rand(), seeding per-connection
// state from std::random_device. Each breaks determinism: the same run
// would answer queries differently twice. Expected findings: at least
// four [R4].
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace netqos::query {

/// Response stamped with the machine's clock instead of sim time.
std::int64_t response_timestamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

/// "Latency" measured against the host, not the simulation.
std::int64_t request_latency_ns(std::int64_t started_ns) {
  return std::chrono::steady_clock::now().time_since_epoch().count() -
         started_ns;
}

/// Reply jitter from the global unseeded RNG.
int reply_jitter_ms() { return rand() % 50; }

/// Per-subscriber token from ambient hardware entropy.
std::uint32_t subscriber_token() {
  std::random_device entropy;
  return entropy();
}

}  // namespace netqos::query
