// Known-bad fixture for R1 (decode-safety).
//
// A packet handler reaches the BER decoding surface with a handler for
// BerError only. A truncated datagram throws BufferUnderflow from inside
// decode_message and escapes — the exact bug class PR 3's fuzzer hit.
// Expected finding: one [R1] on the decode_message call.
#include "snmp/pdu.h"

namespace netqos::snmp {

void handle_packet(const Bytes& payload) {
  Message message;
  try {
    message = decode_message(payload);
  } catch (const BerError& e) {
    return;  // malformed BER dropped — but BufferUnderflow escapes!
  }
  (void)message;
}

}  // namespace netqos::snmp
