// Known-good fixture for R3 probe rate math (gap-to-rate discipline).
//
// Packet-pair dispersion and train spacing conversions routed through
// common/units.h and common/sim_time.h: gaps become seconds via
// to_seconds, target gaps come from from_seconds, and bit/byte flips use
// the sanctioned helpers. Expected findings: none.
#include "common/sim_time.h"
#include "common/units.h"

namespace netqos {

BytesPerSecond dispersion_rate(std::size_t probe_bytes, SimDuration gap) {
  return static_cast<double>(probe_bytes) / to_seconds(gap);
}

BitsPerSecond pair_estimate_bits(std::size_t probe_bytes, SimDuration gap) {
  return to_bits_per_second(dispersion_rate(probe_bytes, gap));
}

SimDuration gap_for_rate(std::size_t probe_bytes, BytesPerSecond rate) {
  return from_seconds(static_cast<double>(probe_bytes) / rate);
}

SimDuration train_spacing(std::size_t probe_bytes, BitsPerSecond rate) {
  return transmission_delay(probe_bytes, rate);
}

}  // namespace netqos
