// Known-bad fixture for R3 (units discipline).
//
// Table 1 traps: ifSpeed is bits/s, ifInOctets/ifOutOctets are bytes.
// Raw factor-of-8 and power-of-ten conversions, and a naked Counter32
// subtraction outside monitor/counter_math (which ignores wrap).
// Expected findings: at least four [R3].
#include <cstdint>

namespace netqos {

double link_speed_mbps(std::uint64_t if_speed_bps) {
  return static_cast<double>(if_speed_bps) / 1e6;  // raw Mbps factor
}

double octets_to_bits(double bytes) {
  return bytes * 8;  // raw bit/byte conversion
}

double bandwidth_bytes_per_second(double bits_per_second) {
  return bits_per_second / 8.0;  // raw bit/byte conversion
}

std::uint32_t traffic_delta(std::uint32_t in_octets_old,
                            std::uint32_t in_octets_new) {
  return in_octets_new - in_octets_old;  // wrong across Counter32 wrap
}

}  // namespace netqos
