// Fixture: R8 hot-path isolation violations. Raw module hook
// deliveries let a throwing module kill the poll round, and the
// zero-copy reader allocates off its throw paths.
#include <cstdint>
#include <vector>

namespace fixture {

struct InterfaceSample {};

class Module {
 public:
  virtual ~Module() = default;
  virtual void on_interface_sample(const InterfaceSample& sample) = 0;
  virtual void flush() = 0;
};

struct Entry {
  Module* module = nullptr;
};

void deliver_round(std::vector<Entry>& entries, const InterfaceSample& s) {
  for (Entry& entry : entries) {
    entry.module->on_interface_sample(s);  // BAD: unguarded delivery
    entry.module->flush();                 // BAD: unguarded delivery
  }
}

class BerReader {
 public:
  std::uint64_t read_tag();

 private:
  std::vector<std::uint64_t> history_;
};

std::uint64_t BerReader::read_tag() {
  history_.push_back(1);  // BAD: allocation on the zero-copy path
  return history_.size();
}

}  // namespace fixture
