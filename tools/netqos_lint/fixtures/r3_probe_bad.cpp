// Known-bad fixture for R3 probe rate math.
//
// Gap-to-rate traps: scaling a raw nanosecond dispersion by a
// power-of-ten, flipping bits/bytes with a naked factor of 8, and mixing
// both in one train-spacing expression. Expected findings: at least
// four [R3].
#include <cstdint>

namespace netqos {

double dispersion_rate(double probe_bytes, std::int64_t gap_ns) {
  return probe_bytes / (static_cast<double>(gap_ns) * 1e-9);  // raw ns->s
}

double pair_estimate_bits(double probe_bytes, std::int64_t gap_ns) {
  return dispersion_rate(probe_bytes, gap_ns) * 8;  // raw bit/byte flip
}

double train_rate_bytes(double bits_per_gap, double gap_us) {
  return bits_per_gap / 8.0 * 1e6 / gap_us;  // raw factor-8 + us scale
}

}  // namespace netqos
