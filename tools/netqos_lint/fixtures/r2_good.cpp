// Known-good fixture for R2 (OID monotonicity).
//
// The same two walk shapes as r2_bad.cpp, each guarded: the loop stops
// when the returned OID is not lexicographically greater than the cursor
// (RFC 1905 §4.2.3). Expected findings: none.
#include "snmp/mib.h"

namespace netqos::snmp {

void walk_everything(MibTree& mib, Oid cursor) {
  while (true) {
    auto next = mib.get_next(cursor);
    if (!next.has_value()) break;
    if (next->first <= cursor) break;  // non-increasing: stop the walk
    cursor = next->first;
  }
}

class GuardedWalker {
 public:
  void on_result(SnmpResult result) {
    for (auto& vb : result.varbinds) {
      if (vb.oid <= cursor_) {
        finish("non-increasing OID in walk response");
        return;
      }
      cursor_ = vb.oid;
      collected_.push_back(vb);
    }
    step();
  }

 private:
  void step();
  void finish(const char* error);
  Oid cursor_;
  std::vector<VarBind> collected_;
};

}  // namespace netqos::snmp
