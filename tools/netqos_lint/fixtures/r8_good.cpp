// Fixture: R8-clean. Hook deliveries go through guarded() or a
// catch-all try block; the zero-copy reader allocates only while
// throwing, and materialization happens in the sanctioned to_value
// bridge.
#include <cstdint>
#include <exception>
#include <vector>

namespace fixture {

struct InterfaceSample {};

class Module {
 public:
  virtual ~Module() = default;
  virtual void on_interface_sample(const InterfaceSample& sample) = 0;
  virtual void flush() = 0;
};

struct Entry {
  Module* module = nullptr;
};

template <typename Fn>
void guarded(Entry& entry, const char* hook, Fn&& fn);

void deliver_round(std::vector<Entry>& entries, const InterfaceSample& s) {
  for (Entry& entry : entries) {
    guarded(entry, "on_interface_sample",
            [&] { entry.module->on_interface_sample(s); });  // OK: guarded
    try {
      entry.module->flush();  // OK: isolated by the catch-all below
    } catch (const std::exception&) {
      // A throwing module cannot kill the round.
    }
  }
}

class BerReader {
 public:
  std::uint64_t read_tag();
  std::vector<std::uint64_t> to_value();

 private:
  const std::uint8_t* data_ = nullptr;
  std::uint64_t count_ = 0;
};

std::uint64_t BerReader::read_tag() {
  if (data_ == nullptr) {
    throw std::length_error("empty reader");  // OK: allocating while failing
  }
  return count_;
}

// OK: the sanctioned materializing bridge may allocate.
std::vector<std::uint64_t> BerReader::to_value() {
  std::vector<std::uint64_t> out;
  out.push_back(count_);
  return out;
}

}  // namespace fixture
