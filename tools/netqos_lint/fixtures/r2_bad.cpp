// Known-bad fixture for R2 (OID monotonicity).
//
// Two unguarded walk shapes:
//  (1) a synchronous GETNEXT chain advancing `cursor` with no comparison
//      against the returned OID — a MIB that repeats an OID loops forever
//      (the PR 3 subtree-walker bug);
//  (2) an asynchronous walk step copying a response OID into a member
//      cursor with no guard anywhere in the function.
// Expected findings: two [R2].
#include "snmp/mib.h"

namespace netqos::snmp {

void walk_everything(MibTree& mib, Oid cursor) {
  while (true) {
    auto next = mib.get_next(cursor);
    if (!next.has_value()) break;
    cursor = next->first;  // no monotonicity check: can loop forever
  }
}

class UnguardedWalker {
 public:
  void on_result(SnmpResult result) {
    for (auto& vb : result.varbinds) {
      cursor_ = vb.oid;  // trusts the agent blindly
      collected_.push_back(vb);
    }
    step();
  }

 private:
  void step();
  Oid cursor_;
  std::vector<VarBind> collected_;
};

}  // namespace netqos::snmp
