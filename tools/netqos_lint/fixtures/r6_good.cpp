// Fixture: R6-clean. Every wire-derived count passes an upper-bound
// check (or is clamped) before it shapes memory.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace fixture {

struct Reader {
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::size_t remaining() const;
};

struct Body {
  std::vector<int> rows;
};

void decode_rows(Reader& in, Body& body) {
  const std::uint16_t count = in.get_u16();
  if (count > in.remaining()) {
    throw std::runtime_error("element count exceeds payload");
  }
  body.rows.reserve(count);  // OK: bounded against remaining bytes
  for (std::uint16_t i = 0; i < count; ++i) {
    body.rows.push_back(0);
  }
}

void decode_lookup(Reader& in, std::vector<int>& table) {
  const std::uint32_t index = in.get_u32();
  if (index >= table.size()) {
    return;
  }
  table[index] = 1;  // OK: checked against the container size
}

void decode_hint(Reader& in, Body& body) {
  const std::uint16_t hint = in.get_u16();
  const std::size_t capped = std::min<std::size_t>(hint, 1024);
  body.rows.reserve(capped);  // OK: clamped to a sane limit
}

}  // namespace fixture
