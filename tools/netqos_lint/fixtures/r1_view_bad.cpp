// Known-bad fixture for R1 (decode-safety), zero-copy view flavor.
//
// A poll-response handler walks the varbind views with a handler for
// BerError only. BerReader validates TLV lengths against the span, so a
// truncated datagram throws BufferUnderflow from next_varbind — and it
// escapes, the PR 3 bug class on the new span path. Expected findings:
// at least one [R1] on the view decode calls.
#include "snmp/ber_view.h"

namespace netqos::snmp {

std::uint64_t sum_counters(const Bytes& payload, const Oid& column) {
  std::uint64_t sum = 0;
  try {
    MessageHeadView head = decode_message_head(payload);
    VarBindView vb;
    while (next_varbind(head.varbinds, vb)) {
      if (vb.oid.starts_with(column)) sum += vb.value.to_unsigned();
    }
  } catch (const BerError& e) {
    return 0;  // malformed BER dropped — but BufferUnderflow escapes!
  }
  return sum;
}

}  // namespace netqos::snmp
