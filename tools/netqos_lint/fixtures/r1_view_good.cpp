// Known-good fixture for R1 (decode-safety), zero-copy view flavor.
//
// The span-based BerReader surface throws the same BerError /
// BufferUnderflow pair as the materializing decoder, so the accepted
// shapes are identical: (1) a boundary handler catching both around
// decode_message_head / next_varbind / the view accessors, (2) a
// propagating decode_*-named helper. Expected findings: none.
#include "snmp/ber_view.h"

namespace netqos::snmp {

std::uint64_t sum_counters(const Bytes& payload, const Oid& column) {
  std::uint64_t sum = 0;
  try {
    MessageHeadView head = decode_message_head(payload);
    VarBindView vb;
    while (next_varbind(head.varbinds, vb)) {
      if (vb.oid.starts_with(column)) sum += vb.value.to_unsigned();
    }
  } catch (const BerError& e) {
    return 0;
  } catch (const BufferUnderflow& e) {
    return 0;  // truncated datagram: same drop as malformed BER
  }
  return sum;
}

std::uint64_t sum_counters_base_class(const Bytes& payload) {
  std::uint64_t sum = 0;
  try {
    MessageHeadView head = decode_message_head(payload);
    VarBindView vb;
    while (next_varbind(head.varbinds, vb)) sum += vb.value.to_unsigned();
  } catch (const std::runtime_error& e) {
    // BerError and BufferUnderflow both derive from runtime_error.
    return 0;
  }
  return sum;
}

Tlv read_next_tlv(BerReader& reader) {
  // Propagating decoder: the read_ prefix marks it; callers catch.
  return reader.read_tlv();
}

}  // namespace netqos::snmp
