// Known-good fixture for R4 (simulated-time purity).
//
// Time comes from the simulator clock, randomness from explicitly seeded
// substream generators. Expected findings: none.
#include "common/rng.h"
#include "common/sim_time.h"

namespace netqos {

SimTime stamp_report(SimTime now) { return now; }

double jitter_fraction(Xoshiro256& rng) { return rng.uniform(); }

Xoshiro256 substream(const Xoshiro256& rng, std::uint64_t stream) {
  return rng.fork(stream);
}

}  // namespace netqos
