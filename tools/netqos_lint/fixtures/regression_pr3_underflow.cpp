// Regression fixture: the PR 3 BufferUnderflow escape, verbatim shape.
//
// This reproduces src/snmp/trap.cpp's TrapListener::handle as it stood
// before the fix: the handler caught BerError but not BufferUnderflow, so
// fuzz seed #13's truncated trap datagram (a TLV whose declared length
// exceeded the remaining payload) unwound through the UDP stack and
// killed the listener. netqos-lint R1 now rejects this shape at lint
// time. Expected finding: one [R1] on the decode_message call.
#include "common/log.h"
#include "snmp/pdu.h"

namespace netqos::snmp {

class TrapListener {
 public:
  void handle(const sim::Ipv4Packet& packet);

 private:
  struct Stats {
    std::uint64_t malformed = 0;
  } stats_;
};

void TrapListener::handle(const sim::Ipv4Packet& packet) {
  Message message;
  try {
    message = decode_message(packet.udp.payload);
  } catch (const BerError& e) {
    ++stats_.malformed;
    NETQOS_DEBUG() << "trap decode error: " << e.what();
    return;
  }
  // ... translate and dispatch the trap ...
  (void)message;
}

}  // namespace netqos::snmp
