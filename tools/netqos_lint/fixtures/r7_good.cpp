// Fixture: R7-clean. Wire-enum switches either cover every enumerator
// or reject unknown values explicitly; BER tag switches always reject.
#include <cstdint>
#include <stdexcept>

namespace fixture {

inline constexpr std::uint8_t kTagInteger = 0x02;
inline constexpr std::uint8_t kTagOctetString = 0x04;

enum class MessageKind : std::uint8_t {
  kHello = 0,
  kData = 1,
  kBye = 2,
};

// OK: exhaustive — every enumerator covered, no default needed.
int dispatch(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHello:
      return 1;
    case MessageKind::kData:
      return 2;
    case MessageKind::kBye:
      return 3;
  }
  return 0;
}

// OK: not exhaustive, but unknown bytes are rejected loudly.
int dispatch_checked(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHello:
      return 1;
    default:
      throw std::runtime_error("unknown message kind");
  }
}

// OK: BER tag switch with an error-returning default.
int classify(std::uint8_t tag) {
  switch (tag) {
    case kTagInteger:
      return 1;
    case kTagOctetString:
      return 2;
    default:
      throw std::runtime_error("unexpected tag");
  }
}

}  // namespace fixture
