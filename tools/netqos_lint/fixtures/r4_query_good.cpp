// Known-good fixture for R4 (simulated-time purity), query-service
// flavor. A query server stamps latency from the simulator clock and
// the client's sent_at header field — never a wall clock — so the
// measured RTT is genuine simulated transit and runs stay bit-for-bit
// reproducible. Expected findings: none.
#include <cstdint>

#include "common/rng.h"
#include "common/sim_time.h"

namespace netqos::query {

struct Header {
  std::uint32_t request_id = 0;
  SimTime sent_at = 0;
};

/// Upstream latency of a request: the server's virtual now minus the
/// client's virtual send stamp.
SimDuration request_latency(SimTime now, const Header& header) {
  return now - header.sent_at;
}

/// Deterministic per-client think-time stagger: derived from the request
/// id, not from any ambient randomness.
SimDuration think_time(const Header& header) {
  return (200 + (header.request_id % 11) * 10) * kMillisecond;
}

/// When a jittered delay is genuinely wanted, it comes from a seeded
/// substream generator passed in by the owner of the stream.
SimDuration jittered_timeout(Xoshiro256& rng, SimDuration base) {
  return base + static_cast<SimDuration>(rng.uniform() * kMillisecond);
}

}  // namespace netqos::query
