// Known-bad fixture for R4 (simulated-time purity).
//
// Wall clocks and ambient randomness make runs non-deterministic and
// non-resumable; all of these are banned outside common/sim_time and
// common/rng. Expected findings: at least four [R4].
#include <chrono>
#include <cstdlib>

namespace netqos {

long long wall_clock_ns() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long stamp_report() {
  return time(nullptr);  // wall clock leaks into output
}

int jitter_percent() {
  return rand() % 100;  // unseeded, irreproducible
}

void reseed() {
  srand(42);  // global RNG state, not per-stream
}

}  // namespace netqos
