// Fixture for the inline suppression mechanism.
//
// Each would-be finding carries a `netqos-lint: allow(...)` annotation on
// the offending line or the line above. Expected findings: none.
#include "common/byte_buffer.h"

namespace netqos {

std::uint32_t probe_sequence(const Bytes& payload) {
  if (payload.size() < 4) return 0;
  ByteReader reader(payload);
  // netqos-lint: allow(R1): fixed 4-byte header, length-checked above
  return reader.get_u32();
}

double legacy_mbps(double bits_per_second) {
  return bits_per_second / 1e6;  // netqos-lint: allow(R3): golden fixture
}

}  // namespace netqos
