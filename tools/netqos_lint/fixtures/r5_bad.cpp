// Known-bad fixture for R5 (module purity).
//
// A "measurement module" that does the core's job: it polls the wire
// with its own SNMP client and writes rates back into the interface
// database. The core/module split exists precisely so the conformance
// harness can prove modules are pure observers; every line below breaks
// that proof. Expected findings: at least four [R5].
#include <string>
#include <utility>

#include "snmp/client.h"

namespace netqos::mon {

class StatsDb;

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

 private:
  std::string name_;
};

class RoguePollerModule final : public Module {
 public:
  explicit RoguePollerModule(snmp::SnmpClient& client)
      : Module("rogue-poller"), client_(client) {}

  // A mutable database handle invites exactly the write below.
  void on_round_end(StatsDb& db);

 private:
  snmp::SnmpClient& client_;
};

void RoguePollerModule::on_round_end(StatsDb& db) {
  client_.get_next({1, 3, 6, 1, 2, 1, 2, 2}, nullptr);  // side-channel poll
  auto* stats_db = &db;
  stats_db->update({"N1", "le0"}, 0, 12345);  // rewrites core state
}

}  // namespace netqos::mon
