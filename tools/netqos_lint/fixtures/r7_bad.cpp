// Fixture: R7 wire-exhaustiveness violations. A peer controls every
// byte that lands in these switches; silent fall-through swallows
// hostile or future values.
#include <cstdint>

namespace fixture {

inline constexpr std::uint8_t kTagInteger = 0x02;
inline constexpr std::uint8_t kTagOctetString = 0x04;

enum class MessageKind : std::uint8_t {
  kHello = 0,
  kData = 1,
  kBye = 2,
};

// BAD: kBye uncovered and the default silently ignores unknown bytes.
int dispatch(MessageKind kind) {
  switch (kind) {
    case MessageKind::kHello:
      return 1;
    case MessageKind::kData:
      return 2;
    default:
      break;
  }
  return 0;
}

// BAD: a BER tag switch can never be exhaustive — it needs an
// error-returning default, not a silent one.
int classify(std::uint8_t tag) {
  switch (tag) {
    case kTagInteger:
      return 1;
    case kTagOctetString:
      return 2;
    default:
      break;
  }
  return 0;
}

}  // namespace fixture
