// Known-good fixture for R1 (decode-safety).
//
// Both accepted shapes: (1) a boundary handler catching BerError AND
// BufferUnderflow around the decode surface, (2) a propagating decoder
// helper whose decode_*/read_*/parse_* name marks it as internal to the
// codec (exceptions flow to the boundary). Expected findings: none.
#include "snmp/pdu.h"

namespace netqos::snmp {

void handle_packet(const Bytes& payload) {
  Message message;
  try {
    message = decode_message(payload);
  } catch (const BerError& e) {
    return;
  } catch (const BufferUnderflow& e) {
    return;
  }
  (void)message;
}

void handle_packet_base_class(const Bytes& payload) {
  Message message;
  try {
    message = decode_message(payload);
  } catch (const std::runtime_error& e) {
    // Both BerError and BufferUnderflow derive from runtime_error.
    return;
  }
  (void)message;
}

std::uint32_t decode_probe_header(ByteReader& reader) {
  // Propagating decoder: the decode_ prefix marks it; callers catch.
  return reader.get_u32();
}

}  // namespace netqos::snmp
