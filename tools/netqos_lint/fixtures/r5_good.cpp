// Known-good fixture for R5 (module purity).
//
// A measurement module that does everything a module is allowed to do:
// accumulate state from the delivered sample stream and read core state
// through the const surface. No SNMP, no StatsDb mutation. Expected
// findings: none.
#include <cstdint>
#include <string>
#include <utility>

namespace netqos::mon {

class StatsDb;
class ModuleCore;

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

 private:
  std::string name_;
};

class MeanRateModule final : public Module {
 public:
  MeanRateModule() : Module("mean-rate") {}

  void on_interface_sample(double rate) {
    ++samples_;
    total_ += rate;
  }

  // Reading through the const surface is the sanctioned path.
  const StatsDb& peek(const ModuleCore& core) const;

  double mean() const {
    return samples_ == 0 ? 0.0 : total_ / static_cast<double>(samples_);
  }

 private:
  std::uint64_t samples_ = 0;
  double total_ = 0.0;
};

}  // namespace netqos::mon
