#!/usr/bin/env python3
"""netqos-lint: project-invariant static analysis for the netqos tree.

Enforces four invariants that ordinary compilers and clang-tidy cannot
express, each born from a real bug class (see DESIGN.md "Static analysis"):

  R1  decode-safety      Every call site of the BER/byte-buffer decoding
                         surface (ber::read_* / ber::expect_* /
                         decode_message / ByteReader::get_* ...) must be
                         reachable only under a handler that catches BOTH
                         BerError and BufferUnderflow. PR 3's fuzzer found
                         a BufferUnderflow escaping a handler that caught
                         only BerError; this rule makes that a lint error.
                         Functions whose names mark them as decoder
                         internals (decode_/read_/parse_/expect_/peek_)
                         and the codec-internal files propagate instead of
                         catching, and are exempt.

  R2  OID monotonicity   A GETNEXT/GETBULK walk loop that advances a
                         cursor from response varbinds must guard against
                         non-increasing OIDs (RFC 1905 section 4.2.3). A
                         buggy or adversarial agent that repeats an OID
                         would otherwise walk the manager forever — the
                         second PR 3 fuzzer find.

  R3  units discipline   MIB-II ifSpeed is bits/s, ifInOctets/ifOutOctets
                         are bytes (paper Table 1), and the paper reports
                         loads in Kbytes/s. All factor-of-8 / power-of-ten
                         bandwidth conversions must go through
                         common/units.h, and cumulative MIB counters may
                         only be differenced inside monitor/counter_math
                         (Counter32 wrap arithmetic, paper section 3.1).
                         Probe rate math (packet-pair dispersion, train
                         spacing) is in scope too: gap-to-rate conversions
                         go through to_seconds/from_seconds, never raw
                         powers-of-ten nanosecond scaling.

  R4  sim-time purity    Wall-clock and ambient randomness
                         (std::chrono::system_clock, time(), gettimeofday,
                         rand(), std::random_device, ...) are banned
                         outside common/sim_time and common/rng so every
                         run is deterministic and resumable.

  R5  module purity      Measurement modules (src/monitor/modules/ and
                         any other Module subclass outside the core)
                         consume the per-poll sample stream; the core
                         moves data. A module must not reach the SNMP
                         layer (snmp:: / SnmpClient) or hold a mutable
                         StatsDb handle — ModuleCore::samples() is const
                         for a reason. The conformance harness proves
                         modules are pure observers; this rule keeps the
                         type system from being casted around it.

Suppression:
  * Inline: `// netqos-lint: allow(R3): reason` on the offending line or
    the line directly above it. The rule list may name several rules,
    e.g. allow(R1,R3).
  * Baseline: `--baseline FILE` holds known findings, one per line, as
    `RULE path normalized-source-line`. Findings present in the baseline
    are reported only with --show-baselined. `--update-baseline`
    rewrites the file from the current findings.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "R1": "decode-safety: ber/byte-buffer reads need BerError + BufferUnderflow handlers",
    "R2": "OID monotonicity: GETNEXT/GETBULK walk loops must reject non-increasing OIDs",
    "R3": "units discipline: bit/byte/Mbps conversions only via common/units.h; "
          "counter differencing only in monitor/counter_math",
    "R4": "sim-time purity: no wall clocks or ambient randomness outside "
          "common/sim_time / common/rng",
    "R5": "module purity: measurement modules may not reach the SNMP layer "
          "or mutate the StatsDb",
}

# Files that ARE the sanctioned implementation of a rule's subject matter.
R1_CODEC_FILES = (
    "common/byte_buffer.h", "common/byte_buffer.cpp",
    "snmp/ber.h", "snmp/ber.cpp",
    "snmp/ber_view.h", "snmp/ber_view.cpp",
    "snmp/pdu.cpp",
)
R3_UNITS_FILES = ("common/units.h", "common/sim_time.h")
R3_COUNTER_FILES = ("monitor/counter_math.h", "monitor/counter_math.cpp")
R4_CLOCK_FILES = ("common/sim_time.h", "common/sim_time.cpp",
                  "common/rng.h", "common/rng.cpp")
# The module framework itself plus the in-core Module subclasses (the qos
# detectors predate the split and read monitor state; the distributed
# shard forwarder IS core plumbing) are exempt from R5 — they are the
# sanctioned boundary, not stream consumers.
R5_CORE_FILES = ("monitor/module.h", "monitor/module.cpp",
                 "monitor/qos.h", "monitor/qos.cpp",
                 "monitor/distributed.h", "monitor/distributed.cpp")

# Enclosing-function name prefixes that mark R1 decoder internals: they
# propagate BerError/BufferUnderflow to the packet-handler boundary.
R1_PROPAGATOR_PREFIXES = ("decode_", "read_", "parse_", "expect_", "peek_")

R1_CALL_RE = re.compile(
    r"\bber::(?:read|expect)_\w+\s*\("
    r"|\bdecode_(?:message|pdu|trap_v1|message_head|varbinds)\s*\("
    r"|\bnext_varbind\s*\("
    r"|\.(?:get|peek)_(?:u8|u16|u32|u64|bytes|string)\s*\("
    r"|\.(?:read|expect)_tlv\s*\("
    r"|\.to_(?:oid|value|unsigned|integer|text)\s*\(")

R2_STEP_RE = re.compile(r"\b(?:get_next|get_bulk)\s*\(")
R2_RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:const\s+)?auto\s*&{0,2}\s*(\w+)\s*:\s*[\w.\->]*varbinds\s*\)")
RELOP_RE = re.compile(r"<=|>=|(?<![<>\-])<(?![<>=])|(?<![<>\-])>(?![<>=])")

# R3(a): a factor-of-8 bit<->byte conversion.
R3_FACTOR8_RE = re.compile(r"[*/]\s*8(?:\.0+)?(?![\w.'])|(?<![\w.'])8(?:\.0+)?\s*\*")
# Duration arithmetic like `8 * kMillisecond` is time math, not a unit
# conversion — the sim-time constants exempt the line from R3(a).
R3_DURATION_RE = re.compile(
    r"\bk(?:Nano|Micro|Milli)second\b|\bkSecond\b"
    r"|\b(?:nano|micro|milli)?seconds\s*\(")
# R3(b): power-of-ten bandwidth multipliers, including the negative
# exponents that scale raw nanosecond gaps in probe rate math.
R3_DECIMAL_RE = re.compile(
    r"(?<![\w.'])(?:[18]e-?[369]|1000000(?:000)?|1000\.0|8\.0"
    r"|1'000(?:'000){0,2}|10'000'000)(?![\w.'])")
# Identifier must look bandwidth-flavoured for (a)/(b) to fire; this keeps
# shift-free arithmetic like `8 * poll_interval` out of scope. Probe rate
# vocabulary (gap/dispersion/probe/spacing) is bandwidth-flavoured too —
# packet-pair and train estimators turn gaps into rates.
R3_CONTEXT_RE = re.compile(
    r"bps|bandwidth|octet|[kmg]bps|byte|\bbits?\b|speed|ifspeed"
    r"|gap|dispersion|probe|spacing", re.IGNORECASE)
# R3(c): naked subtraction of cumulative MIB counters.
R3_COUNTER_ID = r"\w*(?:in|out)_(?:octets|packets|discards)\w*|\bsys_uptime\w*|\bif(?:HC)?(?:In|Out)Octets\w*"
R3_COUNTER_SUB_RE = re.compile(
    r"(?:%s)\s*-(?!>)|(?<!-)-\s*(?:%s)" % (R3_COUNTER_ID, R3_COUNTER_ID))

R4_PATTERNS = (
    (re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall clock (use common/sim_time SimTime)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday (use common/sim_time)"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime (use common/sim_time)"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() (use common/sim_time)"),
    (re.compile(r"(?<![\w:.>])s?rand\s*\(|\bstd::s?rand\b"),
     "rand()/srand() (use common/rng Xoshiro256)"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device (use an explicit seed and common/rng)"),
    (re.compile(r"\bstd::(?:mt19937(?:_64)?|default_random_engine)\b"),
     "implicit std RNG (use common/rng Xoshiro256)"),
)

# R5 subject detection: the file lives in the module directory, or it
# defines a Module subclass (base-clause or constructor-initialiser).
R5_MODULE_CLASS_RE = re.compile(
    r"\bclass\s+\w+(?:\s+final)?\s*:\s*(?:public|private|protected)?\s*"
    r"(?:mon\s*::\s*)?Module\b"
    r"|\)\s*:\s*(?:mon\s*::\s*)?Module\s*\(")
R5_SNMP_RE = re.compile(r"\bsnmp\s*::|\bSnmpClient\b")
R5_SNMP_INCLUDE_RE = re.compile(r'\s*#\s*include\s*"snmp/')
R5_DB_REF_RE = re.compile(r"\bStatsDb\s*[&*]")
R5_DB_CONST_REF_RE = re.compile(r"\bconst\s+StatsDb\s*[&*]")
R5_DB_CAST_RE = re.compile(r"\bconst_cast\s*<\s*(?:mon\s*::\s*)?StatsDb\b")
R5_DB_MUTATE_RE = re.compile(
    r"\b(?:samples\s*\(\s*\)|\w*stats_db\w*|\w*_db)\s*(?:\.|->)\s*"
    r"(?:update|attach_metrics)\s*\(")

ALLOW_RE = re.compile(r"netqos-lint:\s*allow\(([^)]*)\)")


@dataclass
class Finding:
    rule: str
    path: str          # repo-relative, forward slashes
    line: int          # 1-based
    message: str
    source: str        # raw source line (for the baseline key)

    def key(self) -> str:
        return "%s %s %s" % (self.rule, self.path, normalize(self.source))

    def render(self) -> str:
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, self.message)


def normalize(line: str) -> str:
    return " ".join(line.split())


def mask_code(text: str) -> str:
    """Blanks comments, string and char literals, preserving offsets and
    newlines, so structural scans never match inside them."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            # A ' preceded by an identifier/number char is a C++14 digit
            # separator (1'000'000), not a char literal.
            if c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
                i += 1
                continue
            quote = c
            # Raw string literal R"delim( ... )delim"
            if quote == '"' and i > 0 and text[i - 1] == "R" and (
                    i < 2 or not (text[i - 2].isalnum() or text[i - 2] == "_")):
                m = re.match(r'"([^ ()\\\n]*)\(', text[i:])
                if m:
                    end = text.find(")%s\"" % m.group(1), i)
                    end = n if end == -1 else end + len(m.group(1)) + 2
                    for j in range(i, min(end, n)):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def match_brace(text: str, open_idx: int) -> int:
    """Index just past the `}` matching the `{` at open_idx (text is masked)."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                    "sizeof", "alignof", "new", "delete", "throw", "do",
                    "else", "case", "static_assert", "decltype"}

FUNC_RE = re.compile(r"([A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*)\s*\(")


@dataclass
class Function:
    name: str       # last :: component
    body_start: int
    body_end: int


def find_functions(masked: str) -> list:
    """Best-effort function-definition spans. A candidate is NAME(args)
    followed (after const/noexcept/override/trailing-return/init-list
    noise) by `{`. Nested results (lambdas in bodies) are kept; callers
    pick the innermost enclosing span."""
    functions = []
    for m in FUNC_RE.finditer(masked):
        name = re.split(r"\s*::\s*", m.group(1))[-1]
        if name in CONTROL_KEYWORDS:
            continue
        close = match_paren(masked, m.end() - 1)
        if close >= len(masked):
            continue
        # Skip decoration until `{`, `;`, or something that rules this out.
        i = close
        limit = min(len(masked), close + 400)
        while i < limit:
            c = masked[i]
            if c == "{":
                body_end = match_brace(masked, i)
                functions.append(Function(name, i, body_end))
                break
            if c in ";,)=" or c == "}":
                break
            i += 1
    return functions


def innermost_function(functions, offset):
    best = None
    for f in functions:
        if f.body_start <= offset < f.body_end:
            if best is None or (f.body_end - f.body_start) < (best.body_end - best.body_start):
                best = f
    return best


@dataclass
class TryBlock:
    body_start: int
    body_end: int
    catch_types: list = field(default_factory=list)


TRY_RE = re.compile(r"\btry\b")
CATCH_RE = re.compile(r"\bcatch\s*\(")


def find_try_blocks(masked: str) -> list:
    blocks = []
    for m in TRY_RE.finditer(masked):
        open_idx = masked.find("{", m.end())
        if open_idx == -1 or masked[m.end():open_idx].strip():
            continue
        block = TryBlock(open_idx, match_brace(masked, open_idx))
        pos = block.body_end
        while True:
            cm = CATCH_RE.match(masked, pos) or CATCH_RE.match(
                masked, pos + len(masked[pos:]) - len(masked[pos:].lstrip()))
            if not cm:
                break
            paren_end = match_paren(masked, cm.end() - 1)
            decl = masked[cm.end():paren_end - 1].strip()
            if decl == "...":
                block.catch_types.append("...")
            else:
                ids = re.findall(r"[A-Za-z_]\w*", decl)
                # Last identifier is usually the variable; the type is the
                # identifier before it (or the only one).
                type_ids = [i for i in ids if i not in ("const", "volatile", "std")]
                block.catch_types.append(type_ids[-2] if len(type_ids) >= 2 else
                                         (type_ids[-1] if type_ids else ""))
            body_open = masked.find("{", paren_end)
            if body_open == -1:
                break
            pos = match_brace(masked, body_open)
        blocks.append(block)
    return blocks


def catches_cover(types, wanted: str) -> bool:
    bases = {"...", "exception", "runtime_error"}
    return any(t == wanted or t in bases for t in types)


def line_of(offsets, pos: int) -> int:
    """1-based line number for character offset, via precomputed newline
    offsets (sorted)."""
    lo, hi = 0, len(offsets)
    while lo < hi:
        mid = (lo + hi) // 2
        if offsets[mid] <= pos:
            lo = mid + 1
        else:
            hi = mid
    return lo + 1


class FileCheck:
    def __init__(self, path: str, relpath: str, text: str):
        self.relpath = relpath.replace(os.sep, "/")
        self.text = text
        self.masked = mask_code(text)
        self.lines = text.split("\n")
        self.masked_lines = self.masked.split("\n")
        self.newlines = [i for i, c in enumerate(text) if c == "\n"]
        self.functions = find_functions(self.masked)
        self.try_blocks = find_try_blocks(self.masked)
        self.findings = []
        self.allows = self._collect_allows()

    def _collect_allows(self):
        allows = {}
        for i, line in enumerate(self.lines):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            rules = {r.strip().upper() for r in m.group(1).split(",") if r.strip()}
            allows.setdefault(i + 1, set()).update(rules)
            allows.setdefault(i + 2, set()).update(rules)  # next line too
        return allows

    def allowed(self, rule: str, line: int) -> bool:
        return rule in self.allows.get(line, set())

    def report(self, rule: str, line: int, message: str):
        if self.allowed(rule, line):
            return
        src = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        finding = Finding(rule, self.relpath, line, message, src)
        if any(f.rule == rule and f.line == line and f.message == message
               for f in self.findings):
            return  # e.g. one walk call seen from two nested loops
        self.findings.append(finding)

    def in_file(self, suffixes) -> bool:
        return any(self.relpath.endswith(s) for s in suffixes)

    # --- R1 -------------------------------------------------------------
    def check_r1(self):
        if self.in_file(R1_CODEC_FILES):
            return
        for m in R1_CALL_RE.finditer(self.masked):
            func = innermost_function(self.functions, m.start())
            if func is None:
                continue  # declaration or namespace scope, not a call
            if func.name.startswith(R1_PROPAGATOR_PREFIXES):
                continue
            covered = False
            for block in self.try_blocks:
                if block.body_start <= m.start() < block.body_end:
                    if (catches_cover(block.catch_types, "BerError") and
                            catches_cover(block.catch_types, "BufferUnderflow")):
                        covered = True
                        break
            if not covered:
                call = m.group(0).rstrip("(").strip()
                self.report(
                    "R1", line_of(self.newlines, m.start()),
                    "decode call '%s' not guarded by handlers for both "
                    "BerError and BufferUnderflow (PR 3 bug class); wrap it "
                    "in try/catch or name the enclosing function decode_*/"
                    "read_*/parse_* to mark it a propagating decoder" % call)

    # --- R2 -------------------------------------------------------------
    def _body_span(self, keyword_match):
        """Span of the loop body following for(...)/while(...)."""
        paren_open = self.masked.find("(", keyword_match.end() - 1)
        if paren_open == -1:
            return None
        after = match_paren(self.masked, paren_open)
        i = after
        while i < len(self.masked) and self.masked[i] in " \t\n":
            i += 1
        if i < len(self.masked) and self.masked[i] == "{":
            return (i, match_brace(self.masked, i))
        end = self.masked.find(";", i)
        return (i, len(self.masked) if end == -1 else end + 1)

    LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
    ASSIGN_RE = re.compile(r"([\w.\[\]>\-]+?)\s*=(?![=])")

    def check_r2(self):
        # (a) synchronous walk loops: loop body both calls get_next/get_bulk
        # and assigns (part of) the call's argument -> loop-carried cursor.
        for lm in self.LOOP_RE.finditer(self.masked):
            span = self._body_span(lm)
            if span is None:
                continue
            body = self.masked[span[0]:span[1]]
            for sm in R2_STEP_RE.finditer(body):
                args_end = match_paren(body, body.find("(", sm.start()))
                args = body[sm.end():args_end - 1]
                cursor = self._loop_carried_cursor(body, args)
                if cursor is None:
                    continue
                if not self._guarded(body, cursor):
                    self.report(
                        "R2", line_of(self.newlines, span[0] + sm.start()),
                        "GETNEXT/GETBULK walk advances cursor '%s' without a "
                        "monotonicity guard; compare the returned OID against "
                        "the cursor and stop on non-increasing results "
                        "(RFC 1905 §4.2.3)" % cursor)
        # (b) asynchronous walk steps: a range-for over varbinds that copies
        # a whole OID into a cursor must be guarded somewhere in the function.
        for fm in R2_RANGE_FOR_RE.finditer(self.masked):
            vb = fm.group(1)
            open_idx = self.masked.find("{", fm.end())
            if open_idx == -1:
                continue
            body = self.masked[open_idx:match_brace(self.masked, open_idx)]
            am = re.search(r"([\w.\[\]>\-]+)\s*=\s*%s\.oid\s*;" % re.escape(vb), body)
            if not am:
                continue
            cursor = am.group(1)
            func = innermost_function(self.functions, fm.start())
            scope = (self.masked[func.body_start:func.body_end]
                     if func else self.masked)
            if not self._guarded(scope, cursor):
                self.report(
                    "R2", line_of(self.newlines, fm.start()),
                    "walk step copies response OID into cursor '%s' without a "
                    "monotonicity guard in the enclosing function; a repeating "
                    "or regressing agent would walk forever" % cursor)

    def _loop_carried_cursor(self, body: str, args: str):
        for am in self.ASSIGN_RE.finditer(body):
            lhs = am.group(1).strip()
            if not lhs or lhs[0].isdigit():
                continue
            if lhs in ("", "=") or "==" in lhs:
                continue
            if normalize(lhs) and normalize(lhs) in normalize(args):
                return lhs
        return None

    def _guarded(self, scope: str, cursor: str) -> bool:
        ident = re.findall(r"\w+", cursor)
        ident = ident[-1] if ident else cursor
        for line in scope.split("\n"):
            if ident in line and RELOP_RE.search(line):
                return True
        return False

    # --- R3 -------------------------------------------------------------
    def check_r3(self):
        units_ok = self.in_file(R3_UNITS_FILES)
        counters_ok = self.in_file(R3_COUNTER_FILES)
        offset = 0
        for i, mline in enumerate(self.masked_lines):
            lineno = i + 1
            if not units_ok:
                in_context = self._bandwidth_context(offset)
                if (in_context and ">>" not in mline and
                        not R3_DURATION_RE.search(mline) and
                        R3_FACTOR8_RE.search(mline)):
                    self.report(
                        "R3", lineno,
                        "raw factor-of-8 bit/byte conversion; use "
                        "to_bits_per_second/to_bytes_per_second/kBitsPerByte "
                        "from common/units.h (ifSpeed is bits/s, ifOctets "
                        "are bytes — paper Table 1)")
                if in_context and R3_DECIMAL_RE.search(mline):
                    self.report(
                        "R3", lineno,
                        "raw decimal bandwidth multiplier; use kKbps/kMbps/"
                        "kGbps or the conversion helpers in common/units.h "
                        "(gap-to-rate math converts via to_seconds/"
                        "from_seconds)")
            if not counters_ok and R3_COUNTER_SUB_RE.search(mline):
                self.report(
                    "R3", lineno,
                    "naked subtraction of a cumulative MIB counter; "
                    "Counter32/TimeTicks wrap and must be differenced via "
                    "monitor/counter_math (paper §3.1)")
            offset += len(mline) + 1

    def _bandwidth_context(self, offset: int) -> bool:
        func = innermost_function(self.functions, offset)
        if func is None:
            return bool(R3_CONTEXT_RE.search(self.masked_lines[
                line_of(self.newlines, offset) - 1]))
        # Include the declaration line (function name) ahead of the body.
        start = max(0, func.body_start - 200)
        return bool(R3_CONTEXT_RE.search(self.masked[start:func.body_end]))

    # --- R4 -------------------------------------------------------------
    def check_r4(self):
        if self.in_file(R4_CLOCK_FILES):
            return
        for i, mline in enumerate(self.masked_lines):
            for pattern, what in R4_PATTERNS:
                if pattern.search(mline):
                    self.report(
                        "R4", i + 1,
                        "%s breaks deterministic, resumable simulation" % what)
        # Including the headers at all is suspicious enough to flag in raw
        # text (they are masked only inside comments/strings).
        for i, line in enumerate(self.lines):
            if re.match(r"\s*#\s*include\s*<(?:ctime|random|sys/time\.h)>", line):
                self.report(
                    "R4", i + 1,
                    "wall-clock/ambient-randomness header include; only "
                    "common/sim_time and common/rng may provide time and "
                    "randomness")

    # --- R5 -------------------------------------------------------------
    def check_r5(self):
        if self.in_file(R5_CORE_FILES):
            return
        is_subject = ("monitor/modules/" in self.relpath or
                      R5_MODULE_CLASS_RE.search(self.masked))
        if not is_subject:
            return
        for i, line in enumerate(self.lines):
            if R5_SNMP_INCLUDE_RE.match(line):
                self.report(
                    "R5", i + 1,
                    "measurement module includes an SNMP header; modules "
                    "consume the sample stream, polling belongs to the core")
        for i, mline in enumerate(self.masked_lines):
            lineno = i + 1
            if R5_SNMP_RE.search(mline):
                self.report(
                    "R5", lineno,
                    "measurement module reaches the SNMP layer; modules "
                    "consume the sample stream, polling belongs to the core")
            if (R5_DB_REF_RE.search(mline) and
                    not R5_DB_CONST_REF_RE.search(mline)):
                self.report(
                    "R5", lineno,
                    "measurement module holds a mutable StatsDb handle; "
                    "modules read rates via the const "
                    "ModuleCore::samples() surface only")
            if R5_DB_CAST_RE.search(mline):
                self.report(
                    "R5", lineno,
                    "const_cast around the StatsDb; the core ingests "
                    "counters, modules never write them back")
            if R5_DB_MUTATE_RE.search(mline):
                self.report(
                    "R5", lineno,
                    "measurement module calls a StatsDb mutator; sample "
                    "ingestion is the core's job")

    def run(self):
        self.check_r1()
        self.check_r2()
        self.check_r3()
        self.check_r4()
        self.check_r5()
        return self.findings


def iter_source_files(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if name.endswith((".cpp", ".h", ".hpp", ".cc")):
                    yield os.path.join(dirpath, name)


def load_baseline(path):
    entries = set()
    if not path or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                entries.add(line)
    return entries


def save_baseline(path, findings):
    with open(path, "w", encoding="utf-8") as f:
        f.write("# netqos-lint baseline: known findings, one per line, as\n"
                "#   RULE path normalized-source-line\n"
                "# Regenerate with: netqos_lint.py --update-baseline\n")
        for key in sorted({fi.key() for fi in findings}):
            f.write(key + "\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="netqos-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint (default: src)")
    parser.add_argument("--root", default=".",
                        help="repo root for relative finding paths")
    parser.add_argument("--baseline", default=None,
                        help="baseline file of known findings")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print findings present in the baseline")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, doc in RULES.items():
            print("%s  %s" % (rule, doc))
        return 0

    roots = args.paths or [os.path.join(args.root, "src")]
    for root in roots:
        if not os.path.exists(root):
            print("netqos-lint: no such path: %s" % root, file=sys.stderr)
            return 2

    findings = []
    for path in iter_source_files(roots):
        relpath = os.path.relpath(path, args.root)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print("netqos-lint: cannot read %s: %s" % (path, e), file=sys.stderr)
            return 2
        findings.extend(FileCheck(path, relpath, text).run())

    if args.update_baseline:
        if not args.baseline:
            print("netqos-lint: --update-baseline requires --baseline",
                  file=sys.stderr)
            return 2
        save_baseline(args.baseline, findings)
        print("netqos-lint: wrote %d finding(s) to %s"
              % (len(findings), args.baseline))
        return 0

    baseline = load_baseline(args.baseline)
    new = [f for f in findings if f.key() not in baseline]
    old = [f for f in findings if f.key() in baseline]

    for f in sorted(new, key=lambda f: (f.path, f.line)):
        print(f.render())
    if args.show_baselined:
        for f in sorted(old, key=lambda f: (f.path, f.line)):
            print("%s [baselined]" % f.render())
    if new:
        print("netqos-lint: %d new finding(s)%s"
              % (len(new),
                 " (+%d baselined)" % len(old) if old else ""), file=sys.stderr)
        return 1
    if old:
        print("netqos-lint: clean (%d baselined finding(s) remain)" % len(old),
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
